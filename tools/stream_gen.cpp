// stream_gen — streaming front end for the control-plane traffic generator.
//
// Streams a synthesized population through the bounded-memory runtime
// (src/stream/) instead of materializing a Trace: events flow shard-sharded
// and time-ordered into CSV files, a live EPC core simulation, or are just
// counted — optionally paced against the wall clock. With --metrics-out the
// cpg_stream_* / cpg_mcn_* / cpg_gen_* instruments are registered and a
// background reporter publishes periodic snapshots (Prometheus text
// exposition, or JSON when the path ends in .json).
//
// Without --model, a demo model is fitted on a small synthetic ground-truth
// trace so the tool runs out of the box.
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>

#include "fault/failpoint.h"
#include "io/model_io.h"
#include "io/table.h"
#include "model/fit.h"
#include "obs/metrics.h"
#include "obs/reporter.h"
#include "scenario/scenario.h"
#include "scenario/spec.h"
#include "stream/csv_sink.h"
#include "stream/mcn_sink.h"
#include "stream/resilient_sink.h"
#include "stream/stream_generator.h"
#include "synthetic/workload.h"

namespace {

using namespace cpg;

constexpr const char* k_usage = R"(usage: stream_gen [options]
  --model <file>            load a fitted model (default: fit a demo model)
  --scenario <file>         drive the run from a scenario spec (population
                            churn, flash crowds, 4G->5G migration waves,
                            phase pacing / core degradation); replaces
                            --phones/--cars/--tablets/--start-hour/--hours
  --phones <n>              phone UE count (default 1000)
  --cars <n>                connected-car UE count (default 0)
  --tablets <n>             tablet UE count (default 0)
  --start-hour <h>          starting hour of day (default 10)
  --hours <h>               duration in hours (default 1.0)
  --seed <s>                master seed (default 42)
  --shards <k>              shard count (0 = one per worker thread)
  --threads <t>             worker threads (0 = hardware concurrency)
  --slice-min <m>           slice length in minutes (default 10)
  --queue-events <q>        per-queue backpressure threshold in events
  --clock <mode>            afap | realtime | accel (default afap)
  --accel <x>               trace seconds per wall second (accel mode, > 0)
  --out <prefix>            write <prefix>_{events,ues}.csv incrementally
  --mcn                     feed the stream into the live EPC core simulator
  --checkpoint-dir <dir>    periodically checkpoint stream progress to <dir>
  --checkpoint-interval <k> slices between checkpoints (default 16)
  --resume                  continue from the checkpoint in --checkpoint-dir
                            (byte-identical output; fresh start if absent)
  --sink-policy <p>         supervise the sink with retry/backoff; on retry
                            exhaustion: fail | drop | spill (default: no
                            supervision). Failpoints arm via CPG_FAILPOINTS.
  --spill-file <path>       dead-letter file for --sink-policy spill
                            (default <out>_spill.csv)
  --metrics-out <path>      export runtime metrics to <path>; format is JSON
                            when the path ends in .json, Prometheus text
                            exposition otherwise
  --metrics-interval-s <s>  metrics snapshot period in seconds (default 1.0)
  --help                    print this message and exit
)";

// A command-line error: main() prints the message plus the usage string.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

const std::set<std::string>& value_flags() {
  static const std::set<std::string> flags{
      "model",      "scenario", "phones",      "cars",        "tablets",
      "start-hour", "hours",    "seed",        "shards",
      "threads",    "slice-min", "queue-events", "clock",
      "accel",      "out",      "metrics-out", "metrics-interval-s",
      "checkpoint-dir", "checkpoint-interval", "sink-policy", "spill-file"};
  return flags;
}

const std::set<std::string>& switch_flags() {
  static const std::set<std::string> flags{"mcn", "resume", "help"};
  return flags;
}

// Parses --flag value / --flag=value against the known-flag tables above.
// A value flag consumes the following argv entry *unconditionally*, so
// negative numbers ("--accel -2") reach the numeric parser instead of being
// mistaken for a flag. Unknown flags and missing values are errors naming
// the flag.
std::map<std::string, std::string> parse_flags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw UsageError("unexpected argument \"" + arg +
                       "\" (flags start with --)");
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    if (switch_flags().count(name) != 0) {
      if (has_value) {
        throw UsageError("--" + name + " does not take a value");
      }
      flags[name] = "1";
      continue;
    }
    if (value_flags().count(name) == 0) {
      throw UsageError("unknown flag --" + name);
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        throw UsageError("--" + name + " requires a value");
      }
      value = argv[++i];
    }
    flags[name] = value;
  }
  return flags;
}

std::uint64_t flag_u64(const std::map<std::string, std::string>& flags,
                       const std::string& key, std::uint64_t fallback) {
  const auto it = flags.find(key);
  if (it == flags.end()) return fallback;
  const std::string& s = it->second;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (s.empty() || *end != '\0' || errno == ERANGE || s.front() == '-') {
    throw UsageError("--" + key + ": expected a non-negative integer, got \"" +
                     s + "\"");
  }
  return v;
}

double flag_double(const std::map<std::string, std::string>& flags,
                   const std::string& key, double fallback) {
  const auto it = flags.find(key);
  if (it == flags.end()) return fallback;
  const std::string& s = it->second;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || *end != '\0' || errno == ERANGE) {
    throw UsageError("--" + key + ": expected a number, got \"" + s + "\"");
  }
  return v;
}

model::ModelSet demo_model(std::uint64_t seed) {
  std::cerr << "no --model given: fitting a demo model on a synthetic "
               "ground-truth trace (1000 UEs, 48 h)...\n";
  auto opts = synthetic::default_population(1000);
  opts.duration_hours = 48.0;
  opts.seed = seed;
  const Trace fit_trace = synthetic::generate_ground_truth(opts);
  model::FitOptions fit;
  fit.method = model::Method::ours;
  fit.clustering.theta_n = 50;
  return model::fit_model(fit_trace, fit);
}

int run(int argc, char** argv) {
  const auto flags = parse_flags(argc, argv);
  if (flags.count("help") != 0) {
    std::cout << k_usage;
    return 0;
  }

  // Parse and validate everything before the (expensive) model load, so a
  // typo fails in milliseconds, not after a demo-model fit.
  const std::uint64_t seed = flag_u64(flags, "seed", 42);

  const bool scenario_run = flags.count("scenario") != 0;
  if (scenario_run) {
    for (const char* f :
         {"phones", "cars", "tablets", "start-hour", "hours"}) {
      if (flags.count(f) != 0) {
        throw UsageError(std::string("--") + f +
                         " conflicts with --scenario (the spec declares the "
                         "population and window)");
      }
    }
  }
  // Parsing the spec up front also makes a malformed file fail fast; the
  // compile against the model happens after the model load below.
  std::optional<scenario::ScenarioSpec> spec;
  if (scenario_run) {
    spec = scenario::parse_scenario_file(flags.at("scenario"));
  }

  gen::GenerationRequest request;
  request.ue_counts[index_of(DeviceType::phone)] =
      flag_u64(flags, "phones", 1000);
  request.ue_counts[index_of(DeviceType::connected_car)] =
      flag_u64(flags, "cars", 0);
  request.ue_counts[index_of(DeviceType::tablet)] =
      flag_u64(flags, "tablets", 0);
  request.start_hour = static_cast<int>(flag_u64(flags, "start-hour", 10));
  request.duration_hours = flag_double(flags, "hours", 1.0);
  request.seed = seed;
  request.num_threads =
      static_cast<unsigned>(flag_u64(flags, "threads", 0));

  stream::StreamOptions options;
  options.num_shards = flag_u64(flags, "shards", 0);
  options.slice_ms = static_cast<TimeMs>(
      flag_double(flags, "slice-min", 10.0) * k_ms_per_minute);
  options.max_buffered_events =
      flag_u64(flags, "queue-events", options.max_buffered_events);
  options.accel_factor = flag_double(flags, "accel", 1.0);
  const std::string clock =
      flags.count("clock") ? flags.at("clock") : "afap";
  if (clock == "afap") {
    options.clock = stream::ClockMode::as_fast_as_possible;
  } else if (clock == "realtime") {
    options.clock = stream::ClockMode::real_time;
  } else if (clock == "accel") {
    options.clock = stream::ClockMode::accelerated;
  } else {
    throw UsageError("--clock must be afap, realtime or accel, got \"" +
                     clock + "\"");
  }
  if (options.clock == stream::ClockMode::accelerated &&
      !(options.accel_factor > 0.0 &&
        std::isfinite(options.accel_factor))) {
    throw UsageError("--accel: must be > 0 and finite with --clock accel");
  }

  options.checkpoint.dir =
      flags.count("checkpoint-dir") ? flags.at("checkpoint-dir") : "";
  options.checkpoint.interval_slices =
      flag_u64(flags, "checkpoint-interval", 16);
  options.resume = flags.count("resume") != 0;
  if (options.resume && options.checkpoint.dir.empty()) {
    throw UsageError("--resume requires --checkpoint-dir");
  }
  if (options.resume && flags.count("mcn") != 0) {
    // The live core accumulates queueing state the checkpoint does not
    // capture; resuming would silently skip its head of the stream.
    throw UsageError("--resume cannot be combined with --mcn");
  }
  if (options.checkpoint.interval_slices == 0) {
    throw UsageError("--checkpoint-interval: must be >= 1");
  }

  stream::ResilientSinkOptions resilience;
  const bool supervise = flags.count("sink-policy") != 0;
  if (supervise) {
    const std::string& policy = flags.at("sink-policy");
    if (policy == "fail") {
      resilience.policy = stream::SinkPolicy::fail;
    } else if (policy == "drop") {
      resilience.policy = stream::SinkPolicy::drop;
    } else if (policy == "spill") {
      resilience.policy = stream::SinkPolicy::spill;
      if (flags.count("spill-file")) {
        resilience.spill_path = flags.at("spill-file");
      } else if (flags.count("out")) {
        resilience.spill_path = flags.at("out") + "_spill.csv";
      } else {
        throw UsageError(
            "--sink-policy spill needs --spill-file (or --out to derive it)");
      }
    } else {
      throw UsageError("--sink-policy must be fail, drop or spill, got \"" +
                       policy + "\"");
    }
  }

  // Deterministic fault injection: CPG_FAILPOINTS arms named sites (see
  // src/fault/failpoint.h for the syntax).
  if (const std::size_t armed = fault::arm_from_env(); armed > 0) {
    std::cerr << "armed " << armed << " failpoint(s) from CPG_FAILPOINTS\n";
  }

  // --metrics-out turns on the whole observability stack: the stream
  // runtime, the per-UE generators, and (with --mcn) the live core all
  // register their instruments in one registry; a background reporter
  // publishes it every --metrics-interval-s and once more on shutdown.
  obs::Registry registry;
  std::unique_ptr<gen::GenMetrics> gen_metrics;
  std::unique_ptr<obs::SnapshotReporter> reporter;
  const bool want_metrics = flags.count("metrics-out") != 0;
  const double interval_s = flag_double(flags, "metrics-interval-s", 1.0);
  if (want_metrics) {
    if (!(interval_s > 0.0)) {
      throw UsageError("--metrics-interval-s: must be > 0");
    }
    options.metrics = &registry;
    gen_metrics = std::make_unique<gen::GenMetrics>(
        gen::GenMetrics::register_in(registry));
    request.ue_options.metrics = gen_metrics.get();
    const std::string& path = flags.at("metrics-out");
    const bool json = path.size() >= 5 &&
                      path.compare(path.size() - 5, 5, ".json") == 0;
    reporter = std::make_unique<obs::SnapshotReporter>(
        registry,
        std::chrono::milliseconds(std::llround(interval_s * 1000.0)),
        obs::SnapshotReporter::file_writer(
            path, json ? obs::ExportFormat::json
                       : obs::ExportFormat::prometheus));
  }

  const model::ModelSet set = flags.count("model")
                                  ? io::load_model(flags.at("model"))
                                  : demo_model(seed);

  std::optional<scenario::CompiledScenario> scen;
  if (spec.has_value()) {
    scenario::CompileOptions copts;
    copts.seed = seed;
    copts.ue_options = request.ue_options;
    scen.emplace(scenario::compile(*spec, set, copts));
    // The plan overload takes the thread count from the stream options.
    options.num_threads = request.num_threads;
    std::cerr << "scenario '" << spec->name << "': "
              << scen->plan.device_of.size() << " UEs across "
              << spec->cohorts.size() << " cohort(s), "
              << spec->phases.size() << " phase(s), start-hour "
              << spec->start_hour << ", " << spec->duration_hours << " h\n";
  }

  stream::CountingSink counter;
  std::vector<stream::EventSink*> sinks{&counter};
  std::unique_ptr<stream::CsvSink> csv;
  if (flags.count("out")) {
    csv = std::make_unique<stream::CsvSink>(flags.at("out"));
    sinks.push_back(csv.get());
  }
  std::unique_ptr<stream::McnLiveSink> mcn_sink;
  if (flags.count("mcn")) {
    mcn::SimulationConfig cfg;
    cfg.metrics = want_metrics ? &registry : nullptr;
    mcn_sink = std::make_unique<stream::McnLiveSink>(cfg);
    sinks.push_back(mcn_sink.get());
  }
  stream::FanoutSink fanout(sinks);
  std::unique_ptr<stream::ResilientSink> resilient;
  stream::EventSink* delivery = &fanout;
  if (supervise) {
    if (want_metrics) resilience.metrics = &registry;
    resilient = std::make_unique<stream::ResilientSink>(fanout, resilience);
    delivery = resilient.get();
  }

  const auto t0 = std::chrono::steady_clock::now();
  const stream::StreamStats stats =
      scen.has_value()
          ? stream::stream_generate(scen->plan, options, *delivery)
          : stream::stream_generate(set, request, options, *delivery);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (reporter) reporter->stop();  // publishes the final snapshot

  std::cout << "streamed " << io::fmt_count(stats.events) << " events for "
            << stats.num_ues << " UEs in " << wall << " s ("
            << io::fmt_count(static_cast<std::uint64_t>(
                   wall > 0 ? static_cast<double>(stats.events) / wall : 0))
            << " events/s) | shards=" << stats.num_shards
            << " slices=" << stats.slices
            << " peak_buffered=" << stats.peak_buffered_events << "\n";
  if (scen.has_value()) {
    std::cout << "scenario lifecycle: " << stats.cohort_joins
              << " joins, " << stats.cohort_leaves << " leaves, "
              << stats.migrations << " migrations\n";
  }
  if (stats.start_slice > 0) {
    std::cout << "resumed from slice " << stats.start_slice << "\n";
  }
  if (stats.checkpoints_written > 0) {
    std::cout << "wrote " << stats.checkpoints_written << " checkpoint(s) to "
              << options.checkpoint.dir << "\n";
  }
  if (resilient != nullptr) {
    const stream::ResilientSinkStats& rs = resilient->stats();
    if (rs.retries + rs.dropped_events + rs.spilled_events > 0) {
      std::cout << "sink supervision: " << rs.retries << " retries ("
                << rs.backoff_ms << " ms backoff), " << rs.dropped_events
                << " dropped, " << rs.spilled_events << " spilled\n";
    }
  }
  for (EventType e : k_all_event_types) {
    std::cout << "  " << to_string(e) << ": " << counter.count(e) << "\n";
  }
  if (csv) {
    std::cout << "wrote " << flags.at("out") << "_{events,ues}.csv ("
              << csv->events_written() << " rows)\n";
  }
  if (reporter) {
    std::cout << "wrote " << reporter->snapshots() << " metric snapshots to "
              << flags.at("metrics-out") << "\n";
  }
  if (mcn_sink) {
    const mcn::SimulationResult& r = mcn_sink->result();
    std::cout << "\nlive EPC core: " << r.procedures << " procedures, "
              << r.messages << " messages, mean latency "
              << r.latency_us.mean << " us\n";
    io::Table table({"NF", "msgs", "util", "mean wait us", "max q"});
    for (mcn::NetworkFunction nf : mcn::k_all_nfs) {
      const mcn::NfStats& s = r.nf[mcn::index_of(nf)];
      table.add_row({std::string(mcn::to_string(nf)),
                     std::to_string(s.messages),
                     io::fmt_pct(s.utilization),
                     std::to_string(s.mean_wait_us),
                     std::to_string(s.max_queue_depth)});
    }
    table.print(std::cout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const UsageError& e) {
    std::cerr << "error: " << e.what() << "\n\n" << k_usage;
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (...) {
    std::cerr << "error: unknown failure\n";
    return 1;
  }
}
