// stream_gen — streaming front end for the control-plane traffic generator.
//
// Streams a synthesized population through the bounded-memory runtime
// (src/stream/) instead of materializing a Trace: events flow shard-sharded
// and time-ordered into CSV files, a live EPC core simulation, or are just
// counted — optionally paced against the wall clock. With --metrics-out the
// cpg_stream_* / cpg_mcn_* / cpg_gen_* instruments are registered and a
// background reporter publishes periodic snapshots (Prometheus text
// exposition, or JSON when the path ends in .json).
//
// With --ranks N the population is split across N spawned worker processes
// (src/dist/): each rank re-execs this binary in --dist-worker mode,
// generates its UE slice, and streams it back over a socket; the
// coordinator k-way merges the rank streams into the same sink chain,
// byte-identical to a single-process run.
//
// Without --model, a demo model is fitted on a small synthetic ground-truth
// trace so the tool runs out of the box.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "dist/coordinator.h"
#include "dist/launch.h"
#include "dist/worker.h"
#include "fault/failpoint.h"
#include "io/model_io.h"
#include "io/table.h"
#include "model/fit.h"
#include "obs/metrics.h"
#include "obs/reporter.h"
#include "scenario/scenario.h"
#include "scenario/spec.h"
#include "spatial/config.h"
#include "stream/binary_sink.h"
#include "stream/csv_sink.h"
#include "stream/mcn_sink.h"
#include "stream/population.h"
#include "stream/resilient_sink.h"
#include "stream/stream_generator.h"
#include "stream_gen_cli.h"
#include "synthetic/workload.h"

namespace {

using namespace cpg;
using cli::UsageError;

// Graceful SIGTERM/SIGINT: the handler only sets a flag; the stream runtime
// polls it at slice boundaries (StreamOptions::stop_check), cuts a final
// checkpoint when checkpointing is on, and finishes the sinks so staged
// files land as a valid prefix. A second signal aborts immediately with the
// conventional 128+signo status.
volatile std::sig_atomic_t g_stop_signal = 0;

extern "C" void handle_stop_signal(int signo) {
  if (g_stop_signal != 0) std::_Exit(128 + signo);
  g_stop_signal = signo;
}

model::ModelSet demo_model(std::uint64_t seed) {
  std::cerr << "no --model given: fitting a demo model on a synthetic "
               "ground-truth trace (1000 UEs, 48 h)...\n";
  auto opts = synthetic::default_population(1000);
  opts.duration_hours = 48.0;
  opts.seed = seed;
  const Trace fit_trace = synthetic::generate_ground_truth(opts);
  model::FitOptions fit;
  fit.method = model::Method::ours;
  fit.clustering.theta_n = 50;
  return model::fit_model(fit_trace, fit);
}

// Flags a spawned worker inherits verbatim from the coordinator's command
// line: everything that shapes the population plan and the per-rank
// runtime, nothing that shapes coordinator-side delivery.
constexpr const char* k_worker_passthrough[] = {
    "model",     "scenario",  "phones",       "cars",
    "tablets",   "start-hour", "hours",       "seed",
    "shards",    "threads",   "slice-min",    "queue-events",
    "checkpoint-dir", "checkpoint-interval", "spatial"};

int run(int argc, char** argv) {
  const auto flags = cli::parse_flags(argc, argv);
  if (flags.count("help") != 0) {
    std::cout << cli::k_usage;
    return 0;
  }

  // Parse and validate everything before the (expensive) model load, so a
  // typo fails in milliseconds, not after a demo-model fit.
  const std::uint64_t seed = cli::flag_u64(flags, "seed", 42);

  const bool worker_mode = flags.count("dist-worker") != 0;
  const bool dist_run = !worker_mode && flags.count("ranks") != 0;
  // Range-checked: the value is truncated into an unsigned below, and a
  // silently wrapped --ranks 99999999999 would fork a nonsense process
  // count.
  const auto num_ranks = static_cast<unsigned>(
      cli::flag_u64_range(flags, "ranks", 1, 1, dist::k_max_ranks));
  if (worker_mode) {
    if (flags.count("ranks") == 0) {
      throw UsageError("--dist-worker requires --ranks");
    }
    for (const char* f : {"out", "format", "metrics-out", "sink-policy",
                          "spill-file", "clock", "accel"}) {
      if (flags.count(f) != 0) {
        throw UsageError(std::string("--") + f +
                         " belongs to the coordinator, not a --dist-worker");
      }
    }
    for (const char* f : {"mcn", "resume"}) {
      if (flags.count(f) != 0) {
        throw UsageError(std::string("--") + f +
                         " belongs to the coordinator, not a --dist-worker");
      }
    }
  } else {
    for (const char* f : {"dist-resume-dir", "dist-obs", "dist-heartbeat-ms"}) {
      if (flags.count(f) != 0) {
        throw UsageError(std::string("--") + f +
                         " is internal to --dist-worker mode");
      }
    }
  }
  const auto worker_rank = static_cast<unsigned>(
      cli::flag_u64_range(flags, "dist-worker", 0, 0, dist::k_max_ranks - 1));
  if (worker_mode && worker_rank >= num_ranks) {
    throw UsageError("--dist-worker: rank must be < --ranks");
  }

  const std::string format =
      flags.count("format") != 0 ? flags.at("format") : "csv";
  if (format != "csv" && format != "cpgt") {
    throw UsageError("--format must be csv or cpgt, got \"" + format + "\"");
  }
  if (flags.count("format") != 0 && flags.count("out") == 0) {
    throw UsageError("--format requires --out");
  }

  const bool scenario_run = flags.count("scenario") != 0;
  if (scenario_run) {
    for (const char* f :
         {"phones", "cars", "tablets", "start-hour", "hours"}) {
      if (flags.count(f) != 0) {
        throw UsageError(std::string("--") + f +
                         " conflicts with --scenario (the spec declares the "
                         "population and window)");
      }
    }
  }
  // Parsing the spec up front also makes a malformed file fail fast; the
  // compile against the model happens after the model load below.
  std::optional<scenario::ScenarioSpec> spec;
  if (scenario_run) {
    spec = scenario::parse_scenario_file(flags.at("scenario"));
  }

  // Spatial layer: loaded before the model for the same fail-fast reason.
  // The config outlives the run (StreamOptions keeps a pointer).
  std::optional<spatial::SpatialConfig> spatial;
  if (flags.count("spatial") != 0) {
    spatial.emplace(spatial::load_spatial(flags.at("spatial")));
  }

  // UE counts share a dense 32-bit id space; hour-of-day and thread/shard
  // counts are truncated into narrower types below — all range-checked so an
  // absurd or overflowing value is a one-line error, not a wrapped cast.
  constexpr std::uint64_t k_max_ues_per_type = (std::uint64_t{1} << 32) - 1;
  gen::GenerationRequest request;
  request.ue_counts[index_of(DeviceType::phone)] =
      cli::flag_u64_range(flags, "phones", 1000, 0, k_max_ues_per_type);
  request.ue_counts[index_of(DeviceType::connected_car)] =
      cli::flag_u64_range(flags, "cars", 0, 0, k_max_ues_per_type);
  request.ue_counts[index_of(DeviceType::tablet)] =
      cli::flag_u64_range(flags, "tablets", 0, 0, k_max_ues_per_type);
  request.start_hour =
      static_cast<int>(cli::flag_u64_range(flags, "start-hour", 10, 0, 23));
  request.duration_hours =
      cli::flag_double_positive(flags, "hours", 1.0, 24.0 * 365 * 100);
  request.seed = seed;
  request.num_threads = static_cast<unsigned>(
      cli::flag_u64_range(flags, "threads", 0, 0, 4096));

  stream::StreamOptions options;
  if (spatial.has_value()) options.spatial = &*spatial;
  options.num_shards = cli::flag_u64_range(flags, "shards", 0, 0, 4096);
  options.num_threads = request.num_threads;
  options.slice_ms = static_cast<TimeMs>(
      cli::flag_double_positive(flags, "slice-min", 10.0, 24.0 * 60 * 365) *
      k_ms_per_minute);
  options.max_buffered_events = cli::flag_u64_range(
      flags, "queue-events", options.max_buffered_events, 1,
      std::uint64_t{1} << 40);
  options.accel_factor = cli::flag_double_positive(flags, "accel", 1.0, 1e9);
  const std::string clock =
      flags.count("clock") ? flags.at("clock") : "afap";
  if (clock == "afap") {
    options.clock = stream::ClockMode::as_fast_as_possible;
  } else if (clock == "realtime") {
    options.clock = stream::ClockMode::real_time;
  } else if (clock == "accel") {
    options.clock = stream::ClockMode::accelerated;
  } else {
    throw UsageError("--clock must be afap, realtime or accel, got \"" +
                     clock + "\"");
  }
  options.checkpoint.dir =
      flags.count("checkpoint-dir") ? flags.at("checkpoint-dir") : "";
  options.checkpoint.interval_slices = cli::flag_u64_range(
      flags, "checkpoint-interval", 16, 1, std::uint64_t{1} << 20);
  options.resume = flags.count("resume") != 0;
  if (options.resume && options.checkpoint.dir.empty()) {
    throw UsageError("--resume requires --checkpoint-dir");
  }
  if (options.resume && flags.count("mcn") != 0) {
    // The live core accumulates queueing state the checkpoint does not
    // capture; resuming would silently skip its head of the stream.
    throw UsageError("--resume cannot be combined with --mcn");
  }

  // --supervise: self-healing policy for the distributed runtime. "off"
  // (the default) preserves fail-fast: any rank failure aborts the run.
  // "restart[:max]" heals dead or hung ranks by kill + respawn + replay
  // from the last committed distributed checkpoint, within a total restart
  // budget (default 3).
  dist::SuperviseOptions rank_supervision;
  if (flags.count("supervise") != 0) {
    if (!dist_run) {
      throw UsageError("--supervise requires --ranks (it supervises ranks)");
    }
    const std::string& v = flags.at("supervise");
    if (v == "restart" || v.rfind("restart:", 0) == 0) {
      rank_supervision.enabled = true;
      if (v.size() > 8) {
        const std::string n = v.substr(8);
        std::size_t pos = 0;
        unsigned long long max_restarts = 0;
        try {
          max_restarts = std::stoull(n, &pos);
        } catch (...) {
          pos = std::string::npos;
        }
        if (pos != n.size() || n.empty()) {
          throw UsageError(
              "--supervise restart:<max>: expected a non-negative integer, "
              "got \"" + n + "\"");
        }
        rank_supervision.max_restarts = static_cast<unsigned>(
            std::min<unsigned long long>(max_restarts, 1u << 20));
      }
    } else if (v != "off") {
      throw UsageError("--supervise must be off or restart[:max_restarts], "
                       "got \"" + v + "\"");
    }
  }
  if (flags.count("heartbeat-deadline-ms") != 0 && !rank_supervision.enabled) {
    throw UsageError(
        "--heartbeat-deadline-ms requires --supervise restart");
  }
  rank_supervision.heartbeat_deadline_ms =
      static_cast<int>(cli::flag_u64_range(
          flags, "heartbeat-deadline-ms",
          rank_supervision.enabled ? 5000 : 0, 0, 3'600'000));

  stream::ResilientSinkOptions resilience;
  const bool supervise = flags.count("sink-policy") != 0;
  if (supervise) {
    const std::string& policy = flags.at("sink-policy");
    if (policy == "fail") {
      resilience.policy = stream::SinkPolicy::fail;
    } else if (policy == "drop") {
      resilience.policy = stream::SinkPolicy::drop;
    } else if (policy == "spill") {
      resilience.policy = stream::SinkPolicy::spill;
      if (flags.count("spill-file")) {
        resilience.spill_path = flags.at("spill-file");
      } else if (flags.count("out")) {
        resilience.spill_path = flags.at("out") + "_spill.csv";
      } else {
        throw UsageError(
            "--sink-policy spill needs --spill-file (or --out to derive it)");
      }
    } else {
      throw UsageError("--sink-policy must be fail, drop or spill, got \"" +
                       policy + "\"");
    }
  }

  // Deterministic fault injection: CPG_FAILPOINTS arms named sites in every
  // process; a worker rank additionally arms CPG_FAILPOINTS_RANK<r>, so a
  // test can kill one rank of a distributed run.
  if (const std::size_t armed = fault::arm_from_env(); armed > 0) {
    std::cerr << "armed " << armed << " failpoint(s) from CPG_FAILPOINTS\n";
  }
  if (worker_mode) {
    const std::string var =
        "CPG_FAILPOINTS_RANK" + std::to_string(worker_rank);
    if (const std::size_t armed = fault::arm_from_env(var); armed > 0) {
      std::cerr << "rank " << worker_rank << ": armed " << armed
                << " failpoint(s) from " << var << "\n";
    }
    // Ctrl-C reaches the whole foreground process group; the coordinator
    // owns the graceful stop, so a worker ignores SIGINT and dies by the
    // coordinator's SIGTERM once the merge has wound down.
    std::signal(SIGINT, SIG_IGN);
  } else {
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
    options.stop_check = [] { return g_stop_signal != 0; };
  }

  // --metrics-out turns on the whole observability stack: the stream
  // runtime, the per-UE generators, and (with --mcn) the live core all
  // register their instruments in one registry; a background reporter
  // publishes it every --metrics-interval-s and once more on shutdown. A
  // worker rank instead registers silently (--dist-obs) and ships one final
  // snapshot to the coordinator.
  obs::Registry registry;
  std::unique_ptr<gen::GenMetrics> gen_metrics;
  std::unique_ptr<obs::SnapshotReporter> reporter;
  const bool want_metrics = flags.count("metrics-out") != 0;
  const double interval_s =
      cli::flag_double_positive(flags, "metrics-interval-s", 1.0, 86400.0);
  if (want_metrics || flags.count("dist-obs") != 0) {
    options.metrics = &registry;
    gen_metrics = std::make_unique<gen::GenMetrics>(
        gen::GenMetrics::register_in(registry));
    request.ue_options.metrics = gen_metrics.get();
  }
  if (want_metrics) {
    const std::string& path = flags.at("metrics-out");
    const bool json = path.size() >= 5 &&
                      path.compare(path.size() - 5, 5, ".json") == 0;
    reporter = std::make_unique<obs::SnapshotReporter>(
        registry,
        std::chrono::milliseconds(std::llround(interval_s * 1000.0)),
        obs::SnapshotReporter::file_writer(
            path, json ? obs::ExportFormat::json
                       : obs::ExportFormat::prometheus));
  }

  const model::ModelSet set = flags.count("model")
                                  ? io::load_model(flags.at("model"))
                                  : demo_model(seed);

  std::optional<scenario::CompiledScenario> scen;
  if (spec.has_value()) {
    scenario::CompileOptions copts;
    copts.seed = seed;
    copts.ue_options = request.ue_options;
    if (spatial.has_value()) copts.spatial = &*spatial;
    scen.emplace(scenario::compile(*spec, set, copts));
    std::cerr << "scenario '" << spec->name << "': "
              << scen->plan.device_of.size() << " UEs across "
              << spec->cohorts.size() << " cohort(s), "
              << spec->phases.size() << " phase(s), start-hour "
              << spec->start_hour << ", " << spec->duration_hours << " h\n";
  }

  // The distributed modes run an explicit population plan on both sides of
  // the wire; the single-process stationary path keeps using the ModelSet
  // overload (which builds the identical trivial plan internally).
  std::optional<stream::PopulationPlan> stationary;
  const stream::PopulationPlan* plan = nullptr;
  if (scen.has_value()) {
    plan = &scen->plan;
  } else if (worker_mode || dist_run) {
    stationary = stream::stationary_plan(set, request);
    plan = &*stationary;
  }

  if (worker_mode) {
    dist::FdTransport transport(dist::k_worker_fd);
    dist::WorkerOptions wopts;
    wopts.rank = worker_rank;
    wopts.num_ranks = num_ranks;
    wopts.stream = options;
    wopts.ship_checkpoints = !options.checkpoint.dir.empty();
    wopts.resume_dir =
        flags.count("dist-resume-dir") ? flags.at("dist-resume-dir") : "";
    wopts.heartbeat_ms = static_cast<int>(cli::flag_u64_range(
        flags, "dist-heartbeat-ms", 0, 0, 3'600'000));
    const auto t0 = std::chrono::steady_clock::now();
    const stream::StreamStats stats =
        dist::run_worker(*plan, transport, wopts);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::cerr << "rank " << worker_rank << ": streamed "
              << io::fmt_count(stats.events) << " events in " << wall
              << " s (shards=" << stats.num_shards << ")\n";
    return 0;
  }

  stream::CountingSink counter;
  std::vector<stream::EventSink*> sinks{&counter};
  std::unique_ptr<stream::CsvSink> csv;
  std::unique_ptr<stream::BinarySink> binary;
  if (flags.count("out")) {
    if (format == "cpgt") {
      binary = std::make_unique<stream::BinarySink>(flags.at("out"));
      sinks.push_back(binary.get());
    } else {
      csv = std::make_unique<stream::CsvSink>(flags.at("out"));
      sinks.push_back(csv.get());
    }
  }
  std::unique_ptr<stream::McnLiveSink> mcn_sink;
  if (flags.count("mcn")) {
    mcn::SimulationConfig cfg;
    cfg.metrics = want_metrics ? &registry : nullptr;
    mcn_sink = std::make_unique<stream::McnLiveSink>(cfg);
    sinks.push_back(mcn_sink.get());
  }
  stream::FanoutSink fanout(sinks);
  std::unique_ptr<stream::ResilientSink> resilient;
  stream::EventSink* delivery = &fanout;
  if (supervise) {
    if (want_metrics) resilience.metrics = &registry;
    resilient = std::make_unique<stream::ResilientSink>(fanout, resilience);
    delivery = resilient.get();
  }

  const auto t0 = std::chrono::steady_clock::now();
  stream::StreamStats stats;
  std::optional<dist::DistStats> dstats;
  if (dist_run) {
    dist::LaunchOptions lopts;
    lopts.num_ranks = num_ranks;
    lopts.coordinator.stream = options;
    lopts.coordinator.supervise = rank_supervision;
    lopts.coordinator.supervise.on_incident = [](const dist::Incident& i) {
      std::cerr << "supervise: rank=" << i.rank
                << " restart=" << i.restart << " slice=" << i.slice
                << " replay_from=" << i.replay_from
                << " kind=" << (i.hung ? "hung" : "dead")
                << " cause=\"" << i.cause << "\"\n";
    };
    std::optional<dist::DistManifest> manifest;
    if (options.resume) {
      manifest = dist::prepare_resume(options.checkpoint.dir, *plan,
                                      num_ranks,
                                      std::max<TimeMs>(1, options.slice_ms));
      lopts.coordinator.resume = manifest;
    }
    // A supervised worker heartbeats a few times per deadline window, so a
    // slow-but-alive rank never trips the silence detector.
    const int heartbeat_ms =
        rank_supervision.enabled && rank_supervision.heartbeat_deadline_ms > 0
            ? std::max(10, rank_supervision.heartbeat_deadline_ms / 4)
            : 0;
    const std::string exe = dist::self_exe();
    lopts.args_for = [&, heartbeat_ms](unsigned r,
                                       const std::string& resume_dir) {
      std::vector<std::string> args{exe, "--dist-worker", std::to_string(r),
                                    "--ranks", std::to_string(num_ranks)};
      for (const char* f : k_worker_passthrough) {
        if (const auto it = flags.find(f); it != flags.end()) {
          args.push_back(std::string("--") + f);
          args.push_back(it->second);
        }
      }
      if (want_metrics) args.push_back("--dist-obs");
      if (heartbeat_ms > 0) {
        args.push_back("--dist-heartbeat-ms");
        args.push_back(std::to_string(heartbeat_ms));
      }
      if (!resume_dir.empty()) {
        args.push_back("--dist-resume-dir");
        args.push_back(resume_dir);
      }
      return args;
    };
    dstats = dist::run_distributed(*delivery, *plan, lopts);
    stats = dstats->totals;
  } else if (scen.has_value()) {
    stats = stream::stream_generate(scen->plan, options, *delivery);
  } else {
    stats = stream::stream_generate(set, request, options, *delivery);
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (reporter) reporter->stop();  // publishes the final snapshot

  std::cout << "streamed " << io::fmt_count(stats.events) << " events for "
            << stats.num_ues << " UEs in " << wall << " s ("
            << io::fmt_count(static_cast<std::uint64_t>(
                   wall > 0 ? static_cast<double>(stats.events) / wall : 0))
            << " events/s) | shards=" << stats.num_shards
            << " slices=" << stats.slices
            << " peak_buffered=" << stats.peak_buffered_events << "\n";
  if (dstats.has_value()) {
    std::cout << "distributed: " << num_ranks << " rank(s); events per rank:";
    for (unsigned r = 0; r < num_ranks; ++r) {
      std::cout << " " << dstats->ranks[r].events;
    }
    std::cout << "\n";
  }
  if (scen.has_value()) {
    std::cout << "scenario lifecycle: " << stats.cohort_joins
              << " joins, " << stats.cohort_leaves << " leaves, "
              << stats.migrations << " migrations\n";
  }
  if (stats.start_slice > 0) {
    std::cout << "resumed from slice " << stats.start_slice << "\n";
  }
  if (stats.checkpoints_written > 0) {
    std::cout << "wrote " << stats.checkpoints_written << " checkpoint(s) to "
              << options.checkpoint.dir << "\n";
  }
  if (resilient != nullptr) {
    const stream::ResilientSinkStats& rs = resilient->stats();
    if (rs.retries + rs.dropped_events + rs.spilled_events > 0) {
      std::cout << "sink supervision: " << rs.retries << " retries ("
                << rs.backoff_ms << " ms backoff), " << rs.dropped_events
                << " dropped, " << rs.spilled_events << " spilled\n";
    }
  }
  for (EventType e : k_all_event_types) {
    std::cout << "  " << to_string(e) << ": " << counter.count(e) << "\n";
  }
  if (csv) {
    std::cout << "wrote " << flags.at("out") << "_{events,ues}.csv ("
              << csv->events_written() << " rows)\n";
  }
  if (binary) {
    std::cout << "wrote " << stream::BinarySink::path_for(flags.at("out"))
              << " (" << binary->events_written() << " events)\n";
  }
  if (reporter) {
    std::cout << "wrote " << reporter->snapshots() << " metric snapshots to "
              << flags.at("metrics-out") << "\n";
  }
  if (mcn_sink) {
    const mcn::SimulationResult& r = mcn_sink->result();
    std::cout << "\nlive EPC core: " << r.procedures << " procedures, "
              << r.messages << " messages, mean latency "
              << r.latency_us.mean << " us\n";
    io::Table table({"NF", "msgs", "util", "mean wait us", "max q"});
    for (mcn::NetworkFunction nf : mcn::k_all_nfs) {
      const mcn::NfStats& s = r.nf[mcn::index_of(nf)];
      table.add_row({std::string(mcn::to_string(nf)),
                     std::to_string(s.messages),
                     io::fmt_pct(s.utilization),
                     std::to_string(s.mean_wait_us),
                     std::to_string(s.max_queue_depth)});
    }
    table.print(std::cout);
  }
  if (stats.stopped) {
    std::cerr << "interrupted (signal " << static_cast<int>(g_stop_signal)
              << "): stopped gracefully at slice watermark "
              << stats.start_slice + stats.slices;
    if (!options.checkpoint.dir.empty()) {
      std::cerr << "; resume with --resume --checkpoint-dir "
                << options.checkpoint.dir;
    }
    std::cerr << "\n";
    return 128 + static_cast<int>(g_stop_signal);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const UsageError& e) {
    std::cerr << "error: " << e.what() << "\n\n" << cli::k_usage;
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (...) {
    std::cerr << "error: unknown failure\n";
    return 1;
  }
}
