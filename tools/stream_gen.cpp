// stream_gen — streaming front end for the control-plane traffic generator.
//
// Streams a synthesized population through the bounded-memory runtime
// (src/stream/) instead of materializing a Trace: events flow shard-sharded
// and time-ordered into CSV files, a live EPC core simulation, or are just
// counted — optionally paced against the wall clock.
//
//   stream_gen [--model <file>] --phones N --cars N --tablets N
//              [--start-hour H] [--hours H] [--seed S]
//              [--shards K] [--threads T] [--slice-min M] [--queue-events Q]
//              [--clock afap|realtime|accel] [--accel X]
//              [--out <prefix>] [--mcn]
//
// Without --model, a demo model is fitted on a small synthetic ground-truth
// trace so the tool runs out of the box. --out writes
// <prefix>_{events,ues}.csv incrementally; --mcn feeds the stream into the
// EPC core simulator and prints per-NF stats. With neither, events are
// counted and throughput is reported.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "io/model_io.h"
#include "io/table.h"
#include "model/fit.h"
#include "stream/csv_sink.h"
#include "stream/mcn_sink.h"
#include "stream/stream_generator.h"
#include "synthetic/workload.h"

namespace {

using namespace cpg;

std::map<std::string, std::string> parse_flags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags[arg.substr(2)] = argv[++i];
    } else {
      flags[arg.substr(2)] = "1";
    }
  }
  return flags;
}

std::uint64_t flag_u64(const std::map<std::string, std::string>& flags,
                       const std::string& key, std::uint64_t fallback) {
  const auto it = flags.find(key);
  return it == flags.end()
             ? fallback
             : std::strtoull(it->second.c_str(), nullptr, 10);
}

double flag_double(const std::map<std::string, std::string>& flags,
                   const std::string& key, double fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback
                           : std::strtod(it->second.c_str(), nullptr);
}

model::ModelSet demo_model(std::uint64_t seed) {
  std::cerr << "no --model given: fitting a demo model on a synthetic "
               "ground-truth trace (1000 UEs, 48 h)...\n";
  auto opts = synthetic::default_population(1000);
  opts.duration_hours = 48.0;
  opts.seed = seed;
  const Trace fit_trace = synthetic::generate_ground_truth(opts);
  model::FitOptions fit;
  fit.method = model::Method::ours;
  fit.clustering.theta_n = 50;
  return model::fit_model(fit_trace, fit);
}

int run(int argc, char** argv) {
  const auto flags = parse_flags(argc, argv);

  const std::uint64_t seed = flag_u64(flags, "seed", 42);
  const model::ModelSet set = flags.count("model")
                                  ? io::load_model(flags.at("model"))
                                  : demo_model(seed);

  gen::GenerationRequest request;
  request.ue_counts[index_of(DeviceType::phone)] =
      flag_u64(flags, "phones", 1000);
  request.ue_counts[index_of(DeviceType::connected_car)] =
      flag_u64(flags, "cars", 0);
  request.ue_counts[index_of(DeviceType::tablet)] =
      flag_u64(flags, "tablets", 0);
  request.start_hour = static_cast<int>(flag_u64(flags, "start-hour", 10));
  request.duration_hours = flag_double(flags, "hours", 1.0);
  request.seed = seed;
  request.num_threads =
      static_cast<unsigned>(flag_u64(flags, "threads", 0));

  stream::StreamOptions options;
  options.num_shards = flag_u64(flags, "shards", 0);
  options.slice_ms = static_cast<TimeMs>(
      flag_double(flags, "slice-min", 10.0) * k_ms_per_minute);
  options.max_buffered_events =
      flag_u64(flags, "queue-events", options.max_buffered_events);
  options.accel_factor = flag_double(flags, "accel", 1.0);
  const std::string clock =
      flags.count("clock") ? flags.at("clock") : "afap";
  if (clock == "afap") {
    options.clock = stream::ClockMode::as_fast_as_possible;
  } else if (clock == "realtime") {
    options.clock = stream::ClockMode::real_time;
  } else if (clock == "accel") {
    options.clock = stream::ClockMode::accelerated;
  } else {
    throw std::runtime_error("--clock must be afap, realtime or accel");
  }

  stream::CountingSink counter;
  std::vector<stream::EventSink*> sinks{&counter};
  std::unique_ptr<stream::CsvSink> csv;
  if (flags.count("out")) {
    csv = std::make_unique<stream::CsvSink>(flags.at("out"));
    sinks.push_back(csv.get());
  }
  std::unique_ptr<stream::McnLiveSink> mcn_sink;
  if (flags.count("mcn")) {
    mcn::SimulationConfig cfg;
    mcn_sink = std::make_unique<stream::McnLiveSink>(cfg);
    sinks.push_back(mcn_sink.get());
  }
  stream::FanoutSink fanout(sinks);

  const auto t0 = std::chrono::steady_clock::now();
  const stream::StreamStats stats =
      stream::stream_generate(set, request, options, fanout);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::cout << "streamed " << io::fmt_count(stats.events) << " events for "
            << stats.num_ues << " UEs in " << wall << " s ("
            << io::fmt_count(static_cast<std::uint64_t>(
                   wall > 0 ? static_cast<double>(stats.events) / wall : 0))
            << " events/s) | shards=" << stats.num_shards
            << " slices=" << stats.slices
            << " peak_buffered=" << stats.peak_buffered_events << "\n";
  for (EventType e : k_all_event_types) {
    std::cout << "  " << to_string(e) << ": " << counter.count(e) << "\n";
  }
  if (csv) {
    std::cout << "wrote " << flags.at("out") << "_{events,ues}.csv ("
              << csv->events_written() << " rows)\n";
  }
  if (mcn_sink) {
    const mcn::SimulationResult& r = mcn_sink->result();
    std::cout << "\nlive EPC core: " << r.procedures << " procedures, "
              << r.messages << " messages, mean latency "
              << r.latency_us.mean << " us\n";
    io::Table table({"NF", "msgs", "util", "mean wait us", "max q"});
    for (mcn::NetworkFunction nf : mcn::k_all_nfs) {
      const mcn::NfStats& s = r.nf[mcn::index_of(nf)];
      table.add_row({std::string(mcn::to_string(nf)),
                     std::to_string(s.messages),
                     io::fmt_pct(s.utilization),
                     std::to_string(s.mean_wait_us),
                     std::to_string(s.max_queue_depth)});
    }
    table.print(std::cout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
