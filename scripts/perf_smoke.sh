#!/usr/bin/env bash
# CI perf smoke gate for the streaming hot path.
#
# Runs a scaled-down bench/gen_hotpath (fit + compile + generation +
# end-to-end streaming over the scenario2 population) in a temp directory
# and compares its streaming events/sec against the committed
# BENCH_stream.json scenario2 streaming number. The run fails when
# throughput drops below FLOOR x committed — a coarse gate meant to catch
# order-of-magnitude regressions (an accidental debug build, a per-event
# virtual call reintroduced on the hot path), not small machine-to-machine
# noise; hence the generous default floor.
#
# Usage: scripts/perf_smoke.sh [build-dir]   (default: ./build)
# Env:
#   PERF_SMOKE_FLOOR  fraction of the committed number to require
#                     (default 0.60)
#   PERF_SMOKE_SCALE  --scale passed to gen_hotpath (default 0.4; smaller
#                     is faster but noisier)
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BENCH="$REPO_ROOT/$BUILD_DIR/bench/gen_hotpath"
COMMITTED="$REPO_ROOT/BENCH_stream.json"
FLOOR="${PERF_SMOKE_FLOOR:-0.60}"
SCALE="${PERF_SMOKE_SCALE:-0.4}"

if [[ ! -x "$BENCH" ]]; then
  echo "perf_smoke: $BENCH not found (build first, or pass the build dir)" >&2
  exit 2
fi
if [[ ! -f "$COMMITTED" ]]; then
  echo "perf_smoke: no committed $COMMITTED to gate against, skipping" >&2
  exit 0
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== gen_hotpath --scale=$SCALE (streaming measurement)"
(cd "$WORK" && "$BENCH" --scale="$SCALE")

python3 - "$COMMITTED" "$WORK/BENCH_gen.json" "$FLOOR" <<'EOF'
import json
import sys

committed_path, measured_path, floor_s = sys.argv[1:4]
floor = float(floor_s)

with open(committed_path) as f:
    committed = json.load(f)
baseline = next(s for s in committed["scenarios"] if s["name"] == "scenario2")
baseline_eps = baseline["stream"]["events_per_sec"]

with open(measured_path) as f:
    measured = json.load(f)
got_eps = measured["generation"]["streaming"]["events_per_sec"]

need = floor * baseline_eps
print(f"perf_smoke: streaming {got_eps:,.0f} ev/s vs committed "
      f"{baseline_eps:,.0f} ev/s (floor {floor:.0%} = {need:,.0f})")
if got_eps < need:
    print(f"perf_smoke: FAIL - streaming throughput below the floor; "
          f"if this machine is genuinely slower, lower PERF_SMOKE_FLOOR",
          file=sys.stderr)
    sys.exit(1)
print("perf_smoke: OK")
EOF
