#!/usr/bin/env bash
# Process-level chaos smoke for the self-healing distributed runtime
# (DESIGN.md "Supervision & self-healing"): real worker processes are
# SIGKILLed or wedged mid-run via per-rank failpoint schedules, and
# `--supervise=restart` must heal every fault with merged output
# byte-identical to an unfaulted run.
#
#   1. kill+heal    : rank 2 raises SIGKILL mid-stream (re-armed by every
#                    respawned incarnation — a crash loop); the supervisor
#                    converges via committed checkpoints and the CSVs match
#                    the single-process reference exactly
#   2. hang+heal    : rank 1 stops sending (events and heartbeats) and must
#                    be detected by heartbeat silence, killed and respawned
#   3. cpgt + heal  : a supervised kill run writing the binary trace format
#                    still converts to the reference CSVs byte-identically
#   4. scenario heal: churn + migration spec, kill, supervise -> identical
#   5. budget       : --supervise=restart:1 against a crash-looping rank
#                    must fail with a one-line budget-exhaustion error
#   6. fail-fast    : without --supervise a kill still aborts the run
#                    naming the rank (the pre-supervision contract)
#   7. SIGTERM      : a graceful stop cuts a final checkpoint, leaves no
#                    .tmp litter, exits 128+15, and --resume completes the
#                    exact reference output (single-process + distributed)
#   8. salvage      : a cpgt file torn mid-block recovers its valid prefix
#                    with trace_cat salvage
#
# A heal without checkpoints (replay-from-scratch) is covered in-process by
# Supervision.HealWithoutCheckpointDirReplaysFromScratch: an env-armed kill
# re-fires in every respawned incarnation at the same site, so without a
# committed watermark to advance past it a process-level run can only
# crash-loop into the budget.
#
# Every run loads the same pre-fitted model file: worker startup is then
# milliseconds, which keeps frame-counted failpoint schedules (and the
# heartbeat-silence hang below) deterministic across build flavors.
#
# Usage: scripts/chaos_smoke.sh [build-dir]   (default: ./build)
set -euo pipefail

BUILD_DIR="${1:-build}"
GEN="$BUILD_DIR/stream_gen"
CAT="$BUILD_DIR/trace_cat"
FIT="$BUILD_DIR/examples/traffgen"
for BIN in "$GEN" "$CAT" "$FIT"; do
  if [[ ! -x "$BIN" ]]; then
    echo "chaos_smoke: $BIN not found (build first, or pass the build dir)" >&2
    exit 2
  fi
done

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# Every run is capped: a supervision bug that hangs the coordinator must be
# a failure, not a stuck CI job. Sanitizer builds are slow; be generous.
RUN="timeout 300"

echo "== fit a model once so every process (workers included) starts fast"
$RUN "$GEN" --phones 200 --hours 2 --seed 7 --out "$WORK/gt"
$RUN "$FIT" fit --trace "$WORK/gt" --model "$WORK/m.cpgm"

ARGS=(--model "$WORK/m.cpgm" --phones 120 --cars 50 --tablets 30 --hours 1
      --seed 21 --slice-min 5)

echo "== single-process reference"
$RUN "$GEN" "${ARGS[@]}" --out "$WORK/ref"

# A killed worker's failpoint re-arms in every respawned incarnation (the
# spec rides the environment), so the rank crash-loops at a fixed frame
# count; each incarnation still outlives at least one checkpoint cadence,
# the committed watermark advances, and the supervisor converges. The
# restart budget just has to cover the loop.
echo "== kill chaos: rank 2 crash-loops, supervisor heals to identical output"
CPG_FAILPOINTS_RANK2='dist.worker_slice=kill(1,0,6,1)' \
  $RUN "$GEN" "${ARGS[@]}" --ranks 4 --out "$WORK/heal" \
  --checkpoint-dir "$WORK/ck_heal" --checkpoint-interval 2 \
  --supervise=restart:12 2> "$WORK/heal.err"
grep -q 'supervise: rank=2 .* kind=dead' "$WORK/heal.err" || {
  echo "chaos_smoke: no structured incident line for the killed rank:" >&2
  cat "$WORK/heal.err" >&2
  exit 1
}
cmp "$WORK/ref_events.csv" "$WORK/heal_events.csv"
cmp "$WORK/ref_ues.csv" "$WORK/heal_ues.csv"
echo "   healed run byte-identical ($(grep -c '^supervise:' "$WORK/heal.err") incident(s))"

# hang() parks every sending thread — events and heartbeats alike — so the
# coordinator sees total silence and must declare the rank hung, SIGKILL
# it, and respawn. No max-fires cap: the wedge re-arms per incarnation and
# convergence again rides the committed watermark.
echo "== hang chaos: rank 1 goes silent, heartbeat deadline heals it"
CPG_FAILPOINTS_RANK1='dist.send_frame=hang(1,0,11)' \
  $RUN "$GEN" "${ARGS[@]}" --ranks 3 --out "$WORK/hang" \
  --checkpoint-dir "$WORK/ck_hang" --checkpoint-interval 2 \
  --supervise=restart:12 --heartbeat-deadline-ms 1600 2> "$WORK/hang.err"
grep -q 'supervise: rank=1 .* kind=hung' "$WORK/hang.err" || {
  echo "chaos_smoke: hung rank was not reported as hung:" >&2
  cat "$WORK/hang.err" >&2
  exit 1
}
cmp "$WORK/ref_events.csv" "$WORK/hang_events.csv"
cmp "$WORK/ref_ues.csv" "$WORK/hang_ues.csv"
echo "   hung rank healed, output byte-identical"

echo "== cpgt chaos: supervised kill run in the binary format"
CPG_FAILPOINTS_RANK0='dist.worker_slice=kill(1,0,5,1)' \
  $RUN "$GEN" "${ARGS[@]}" --ranks 3 --out "$WORK/bin" --format cpgt \
  --checkpoint-dir "$WORK/ck_bin" --checkpoint-interval 2 \
  --supervise=restart:12 2> "$WORK/bin.err"
grep -q '^supervise: rank=0' "$WORK/bin.err"
$RUN "$CAT" to-csv "$WORK/bin.cpgt" "$WORK/bin"
cmp "$WORK/ref_events.csv" "$WORK/bin_events.csv"
cmp "$WORK/ref_ues.csv" "$WORK/bin_ues.csv"
echo "   healed cpgt run converts byte-identically"

echo "== scenario chaos: churn + migration under a supervised kill"
cat > "$WORK/chaos.scn" <<'EOF'
scenario chaos-smoke
start-hour 8
duration 2

phase calm 0 1
phase rush 1 2
  accel 50

cohort base
  device phone
  count 300
  join 0
  leave 1.5 1.9
cohort crowd
  device phone
  count 150
  join 0.8 1.0
cohort cars
  device car
  count 100
  migrate 1.2 nsa
EOF
$RUN "$GEN" --scenario "$WORK/chaos.scn" --seed 5 --slice-min 5 \
  --out "$WORK/sref"
CPG_FAILPOINTS_RANK2='dist.worker_slice=kill(1,0,7,1)' \
  $RUN "$GEN" --scenario "$WORK/chaos.scn" --seed 5 --slice-min 5 \
  --ranks 4 --out "$WORK/schaos" \
  --checkpoint-dir "$WORK/ck_scn" --checkpoint-interval 2 \
  --supervise=restart:12 2> "$WORK/scn.err"
grep -q '^supervise: rank=2' "$WORK/scn.err"
cmp "$WORK/sref_events.csv" "$WORK/schaos_events.csv"
cmp "$WORK/sref_ues.csv" "$WORK/schaos_ues.csv"
echo "   scenario heal byte-identical"

echo "== restart budget exhaustion is a one-line actionable error"
if CPG_FAILPOINTS_RANK1='dist.worker_slice=kill(1,0,4,1)' \
    $RUN "$GEN" "${ARGS[@]}" --ranks 3 --out "$WORK/budget" \
    --supervise=restart:1 2> "$WORK/budget.err"
then
  echo "chaos_smoke: budget-exhausted run unexpectedly exited 0" >&2
  exit 1
fi
grep -q 'restart budget exhausted (1 restart used)' "$WORK/budget.err" || {
  echo "chaos_smoke: missing budget-exhaustion error:" >&2
  cat "$WORK/budget.err" >&2
  exit 1
}
echo "   budget exhaustion surfaced cleanly"

echo "== --supervise=off (default) preserves fail-fast"
if CPG_FAILPOINTS_RANK1='dist.worker_slice=kill(1,0,4,1)' \
    $RUN "$GEN" "${ARGS[@]}" --ranks 3 --out "$WORK/fastfail" \
    2> "$WORK/fastfail.err"
then
  echo "chaos_smoke: unsupervised kill unexpectedly exited 0" >&2
  exit 1
fi
grep -q "rank 1" "$WORK/fastfail.err" || {
  echo "chaos_smoke: fail-fast error did not name the rank:" >&2
  cat "$WORK/fastfail.err" >&2
  exit 1
}
echo "   unsupervised kill failed fast naming the rank"

# Graceful stop: pace the run with the accel clock so SIGTERM reliably
# lands mid-stream, then resume as-fast-as-possible and demand the exact
# reference bytes. 1 trace hour at 1200x ~= 3s of wall time.
graceful_stop() {
  local label="$1" out="$2" ck="$3"; shift 3
  rm -rf "$ck" "${out}_events.csv" "${out}_ues.csv"
  "$GEN" "${ARGS[@]}" --clock accel --accel 1200 --out "$out" \
    --checkpoint-dir "$ck" --checkpoint-interval 2 "$@" \
    2> "$WORK/stop.err" &
  local pid=$!
  sleep 1
  kill -TERM "$pid" 2>/dev/null || true
  local rc=0
  wait "$pid" || rc=$?
  if [[ "$rc" -ne 143 ]]; then
    echo "chaos_smoke: $label: expected exit 143 after SIGTERM, got $rc" >&2
    cat "$WORK/stop.err" >&2
    exit 1
  fi
  grep -q "stopped gracefully" "$WORK/stop.err" || {
    echo "chaos_smoke: $label: no graceful-stop notice on stderr" >&2
    cat "$WORK/stop.err" >&2
    exit 1
  }
  if compgen -G "${out}*.tmp" > /dev/null || compgen -G "$ck/*.tmp" > /dev/null; then
    echo "chaos_smoke: $label: .tmp litter left behind" >&2
    exit 1
  fi
  $RUN "$GEN" "${ARGS[@]}" --out "$out" \
    --checkpoint-dir "$ck" --checkpoint-interval 2 --resume "$@"
  cmp "$WORK/ref_events.csv" "${out}_events.csv"
  cmp "$WORK/ref_ues.csv" "${out}_ues.csv"
  echo "   $label: graceful stop + resume byte-identical"
}

echo "== graceful SIGTERM: single-process"
graceful_stop "single" "$WORK/grace1" "$WORK/ck_g1"

echo "== graceful SIGTERM: distributed"
graceful_stop "distributed" "$WORK/grace2" "$WORK/ck_g2" --ranks 2

echo "== salvage: a torn cpgt file recovers its valid prefix"
$RUN "$GEN" "${ARGS[@]}" --out "$WORK/whole" --format cpgt
SIZE=$(wc -c < "$WORK/whole.cpgt")
head -c "$((SIZE - 41))" "$WORK/whole.cpgt" > "$WORK/torn.cpgt"
$RUN "$CAT" salvage "$WORK/torn.cpgt" "$WORK/rescued.cpgt" \
  2> "$WORK/salvage.err"
grep -q "torn input" "$WORK/salvage.err"
$RUN "$CAT" to-csv "$WORK/rescued.cpgt" "$WORK/rescued"
LINES=$(wc -l < "$WORK/rescued_events.csv")
head -n "$LINES" "$WORK/ref_events.csv" | cmp - "$WORK/rescued_events.csv"
echo "   salvaged prefix is an exact prefix of the reference CSV"

echo "chaos_smoke: OK"
