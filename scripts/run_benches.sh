#!/usr/bin/env bash
# Regenerates every paper table/figure. Usage: scripts/run_benches.sh [--scale=N]
set -u
cd "$(dirname "$0")/.."
cmake -B build -G Ninja >/dev/null && cmake --build build >/dev/null
for b in build/bench/*; do
  echo "##### $(basename "$b")"
  "$b" "$@"
  echo
done
# stream_throughput, gen_hotpath and dist_throughput drop machine-readable
# results next to us; bench_trend.py folds them into BENCH_trajectory.json.
[ -f BENCH_stream.json ] && echo "machine-readable: $(pwd)/BENCH_stream.json"
[ -f BENCH_gen.json ] && echo "machine-readable: $(pwd)/BENCH_gen.json"
[ -f BENCH_distributed.json ] && echo "machine-readable: $(pwd)/BENCH_distributed.json"
[ -f BENCH_spatial.json ] && echo "machine-readable: $(pwd)/BENCH_spatial.json"
python3 scripts/bench_trend.py
