#!/usr/bin/env bash
# Regenerates every paper table/figure. Usage: scripts/run_benches.sh [--scale=N]
set -u
cd "$(dirname "$0")/.."
cmake -B build -G Ninja >/dev/null && cmake --build build >/dev/null
for b in build/bench/*; do
  echo "##### $(basename "$b")"
  "$b" "$@"
  echo
done
# stream_throughput and gen_hotpath drop machine-readable results next to us.
[ -f BENCH_stream.json ] && echo "machine-readable: $(pwd)/BENCH_stream.json"
[ -f BENCH_gen.json ] && echo "machine-readable: $(pwd)/BENCH_gen.json"
