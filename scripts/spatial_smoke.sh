#!/usr/bin/env bash
# End-to-end smoke test for the spatial layer (DESIGN.md "Spatial layer"):
# the massive-IoT alarm-storm example driven through stream_gen with a
# cell-grid topology.
#
#   1. storm run  : examples/alarm_storm.{scn,spatial} -> cpgt v2 trace
#   2. heatmap    : per-cell rate inside the storm district must be >= 10x
#                   the background rate during the storm window
#   3. determinism: the same run under a different shard/thread/slice
#                   configuration, and split across 4 worker ranks, must
#                   produce byte-identical cpgt files (cells included)
#
# Usage: scripts/spatial_smoke.sh [build-dir]   (default: ./build)
set -euo pipefail

BUILD_DIR="${1:-build}"
GEN="$BUILD_DIR/stream_gen"
CAT="$BUILD_DIR/trace_cat"
for bin in "$GEN" "$CAT"; do
  if [[ ! -x "$bin" ]]; then
    echo "spatial_smoke: $bin not found (build first, or pass the build dir)" >&2
    exit 2
  fi
done
cd "$(dirname "$0")/.."

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

ARGS=(--scenario examples/alarm_storm.scn --spatial examples/alarm_storm.spatial
      --seed 11 --format cpgt)

echo "== storm run (4 shards, 2 threads, 5-min slices)"
"$GEN" "${ARGS[@]}" --shards 4 --threads 2 --slice-min 5 --out "$WORK/ref"

# The scenario starts at 02:00 (t_begin = 7 200 000 ms); the storm window
# is hours [0.5, 0.52) of the run. The district is [2000,4000) m square =
# grid columns/rows 4..7 of the 16x16 grid of 500 m cells.
T0=$((7200000 + 1800000))
T1=$((7200000 + 1872000))
echo "== heatmap: storm district vs background during the storm window"
"$CAT" heatmap "$WORK/ref.cpgt" "$T0" "$T1" > "$WORK/heat.txt"
awk '
  /^cell / {
    if ($3 >= 4 && $3 < 8 && $4 >= 4 && $4 < 8) storm += $5
    else background += $5
  }
  END {
    # Mean per-cell rate over every cell of each region, empty cells
    # included: 16 district cells, 240 background cells.
    ms = storm / 16.0
    mb = background / 240.0
    ratio = (mb > 0 ? ms / mb : ms)
    printf "   district %.1f ev/cell, background %.1f ev/cell -> %.1fx\n", \
           ms, mb, ratio
    if (ms <= 0 || ratio < 10.0) {
      print "spatial_smoke: storm district is not >= 10x background" \
        > "/dev/stderr"
      exit 1
    }
  }' "$WORK/heat.txt"

echo "== determinism across configs (8 shards, 4 threads, 3-min slices)"
"$GEN" "${ARGS[@]}" --shards 8 --threads 4 --slice-min 3 --out "$WORK/alt"
cmp "$WORK/ref.cpgt" "$WORK/alt.cpgt"
echo "   reconfigured run byte-identical"

echo "== determinism across 4 worker ranks"
"$GEN" "${ARGS[@]}" --shards 2 --threads 1 --slice-min 5 --ranks 4 \
  --out "$WORK/ranks"
cmp "$WORK/ref.cpgt" "$WORK/ranks.cpgt"
echo "   4-rank run byte-identical"

echo "spatial_smoke: OK"
