#!/usr/bin/env bash
# End-to-end smoke test for the scenario engine (DESIGN.md "Scenario
# engine"): a 3-phase spec with a flash crowd, churn and a 4G->5G
# migration wave, driven through stream_gen.
#
#   1. reference : undisturbed scenario run -> golden CSVs
#   2. determinism: same spec under a different shard/thread/slice
#                  configuration -> identical CSVs
#   3. kill+resume: killed mid-flash-crowd with checkpoints armed; a
#                  resume against an EDITED spec must be rejected (the
#                  checkpoint pins the scenario fingerprint), then the
#                  real resume completes -> identical CSVs
#
# Usage: scripts/scenario_smoke.sh [build-dir]   (default: ./build)
set -euo pipefail

BUILD_DIR="${1:-build}"
GEN="$BUILD_DIR/stream_gen"
if [[ ! -x "$GEN" ]]; then
  echo "scenario_smoke: $GEN not found (build first, or pass the build dir)" >&2
  exit 2
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

cat > "$WORK/smoke.scn" <<'EOF'
# 3 phases over 3 hours: calm -> rush (flash crowd, degraded core) -> cool.
scenario smoke
start-hour 8
duration 3

phase calm 0 1
phase rush 1 2
  accel 50
  mcn-scale 2.0
phase cool 2 3

cohort base
  device phone
  count 500
  join 0
  leave 2.2 2.8
cohort crowd
  device phone
  count 300
  join 1 1.3
  leave 1.7 2.0
cohort cars
  device car
  count 200
  join 0
  migrate 1.5 nsa
EOF

ARGS=(--scenario "$WORK/smoke.scn" --seed 7)

echo "== reference run (4 shards, 2 threads, 5-min slices)"
"$GEN" "${ARGS[@]}" --shards 4 --threads 2 --slice-min 5 --out "$WORK/ref"

echo "== determinism across configs (8 shards, 4 threads, 3-min slices)"
"$GEN" "${ARGS[@]}" --shards 8 --threads 4 --slice-min 3 --out "$WORK/alt"
cmp "$WORK/ref_events.csv" "$WORK/alt_events.csv"
cmp "$WORK/ref_ues.csv" "$WORK/alt_ues.csv"
echo "   reconfigured run byte-identical"

# The cpgt sink takes the zero-copy SoA path (on_event_columns straight
# into the columnar encoder); trace_cat to-csv promises the exact bytes the
# CSV sink would have written, so converting closes the loop on the whole
# columnar pipeline: emit -> radix sort -> gallop merge -> columnar encode.
echo "== SoA hot path: cpgt output converts back to the reference CSVs"
CAT="$BUILD_DIR/trace_cat"
if [[ -x "$CAT" ]]; then
  "$GEN" "${ARGS[@]}" --shards 4 --threads 2 --slice-min 5 \
    --out "$WORK/soa" --format cpgt
  "$CAT" to-csv "$WORK/soa.cpgt" "$WORK/soa"
  cmp "$WORK/ref_events.csv" "$WORK/soa_events.csv"
  cmp "$WORK/ref_ues.csv" "$WORK/soa_ues.csv"
  echo "   columnar sink output byte-identical after conversion"
else
  echo "scenario_smoke: $CAT not found, skipping the SoA-path step" >&2
fi

# 3 h at 5-min slices = 36 slices; slice 16 lands at 80 min, inside the
# flash crowd's join window.
echo "== kill at slice 16, mid-flash-crowd (checkpoints every 5 slices)"
if CPG_FAILPOINTS='stream.deliver_slice=fatal(1,0,16,1)' \
    "$GEN" "${ARGS[@]}" --shards 4 --threads 2 --slice-min 5 \
    --out "$WORK/run" --checkpoint-dir "$WORK/ck" --checkpoint-interval 5
then
  echo "scenario_smoke: killed run unexpectedly exited 0" >&2
  exit 1
fi
[[ -f "$WORK/ck/stream.ckpt" ]] || {
  echo "scenario_smoke: no checkpoint written before the kill" >&2; exit 1; }

echo "== resume with an edited spec must be rejected"
sed 's/count 300/count 301/' "$WORK/smoke.scn" > "$WORK/edited.scn"
if "$GEN" --scenario "$WORK/edited.scn" --seed 7 \
    --shards 4 --threads 2 --slice-min 5 \
    --out "$WORK/run" --checkpoint-dir "$WORK/ck" --checkpoint-interval 5 \
    --resume 2> "$WORK/reject.err"
then
  echo "scenario_smoke: resume with edited spec unexpectedly succeeded" >&2
  exit 1
fi
grep -qi scenario "$WORK/reject.err" || {
  echo "scenario_smoke: rejection did not mention the scenario fingerprint:" >&2
  cat "$WORK/reject.err" >&2
  exit 1
}
echo "   edited-spec resume rejected"

echo "== resume with the original spec"
"$GEN" "${ARGS[@]}" --shards 4 --threads 2 --slice-min 5 \
  --out "$WORK/run" --checkpoint-dir "$WORK/ck" --checkpoint-interval 5 \
  --resume
cmp "$WORK/ref_events.csv" "$WORK/run_events.csv"
cmp "$WORK/ref_ues.csv" "$WORK/run_ues.csv"
[[ ! -f "$WORK/ck/stream.ckpt" ]] || {
  echo "scenario_smoke: completed run left its checkpoint behind" >&2; exit 1; }
echo "   resumed run byte-identical"

echo "scenario_smoke: OK"
