#!/usr/bin/env bash
# End-to-end smoke test for the distributed runtime (DESIGN.md "Distributed
# generation"): stream_gen --ranks N spawning real worker processes over
# socketpair transports, coordinator k-way merge into the CSV sink chain.
#
#   1. identity   : 1-rank and 4-rank runs -> CSVs byte-identical to the
#                  single-process reference
#   2. scenario   : a churn+migration spec merged across 4 ranks ->
#                  identical to its single-process run
#   3. kill+resume: one rank killed at two different points (per-rank
#                  failpoint schedule, checkpoints armed); each resume
#                  completes the exact reference CSVs
#   4. rank death : a worker dying with no checkpoints must surface as a
#                  clean coordinator error naming the rank — never a hang
#                  (every run below is under `timeout`)
#   5. cpgt       : a 4-rank --format cpgt run converted with trace_cat
#                  -> byte-identical to the 1-rank CSV reference, and a
#                  CSV->cpgt->CSV round trip reproduces itself
#
# Usage: scripts/dist_smoke.sh [build-dir]   (default: ./build)
set -euo pipefail

BUILD_DIR="${1:-build}"
GEN="$BUILD_DIR/stream_gen"
if [[ ! -x "$GEN" ]]; then
  echo "dist_smoke: $GEN not found (build first, or pass the build dir)" >&2
  exit 2
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# Sanitizer builds and 5 concurrent processes on small CI runners are slow;
# cap every run so a deadlock is a failure, not a stuck job.
RUN="timeout 300"

ARGS=(--phones 120 --cars 50 --tablets 30 --hours 1 --seed 21 --slice-min 5)

echo "== single-process reference"
$RUN "$GEN" "${ARGS[@]}" --out "$WORK/ref"

echo "== 1-rank distributed run"
$RUN "$GEN" "${ARGS[@]}" --ranks 1 --out "$WORK/d1"
cmp "$WORK/ref_events.csv" "$WORK/d1_events.csv"
cmp "$WORK/ref_ues.csv" "$WORK/d1_ues.csv"

echo "== 4-rank distributed run"
$RUN "$GEN" "${ARGS[@]}" --ranks 4 --out "$WORK/d4"
cmp "$WORK/ref_events.csv" "$WORK/d4_events.csv"
cmp "$WORK/ref_ues.csv" "$WORK/d4_ues.csv"
echo "   merged streams byte-identical"

echo "== scenario run across 4 ranks"
cat > "$WORK/smoke.scn" <<'EOF'
scenario dist-smoke
start-hour 8
duration 2

phase calm 0 1
phase rush 1 2
  accel 50

cohort base
  device phone
  count 300
  join 0
  leave 1.5 1.9
cohort crowd
  device phone
  count 150
  join 0.8 1.0
cohort cars
  device car
  count 100
  migrate 1.2 nsa
EOF
$RUN "$GEN" --scenario "$WORK/smoke.scn" --seed 5 --slice-min 5 \
  --out "$WORK/sref"
$RUN "$GEN" --scenario "$WORK/smoke.scn" --seed 5 --slice-min 5 \
  --ranks 4 --out "$WORK/s4"
cmp "$WORK/sref_events.csv" "$WORK/s4_events.csv"
cmp "$WORK/sref_ues.csv" "$WORK/s4_ues.csv"
echo "   scenario merge byte-identical"

# Two kill points: rank 2's transport dies on its Nth frame, once early and
# once deep into the run. Checkpoints every 2 slices; the resume must finish
# the exact reference CSVs from whatever the last committed manifest was.
for SKIP in 9 15; do
  echo "== kill rank 2 at frame $SKIP, then resume"
  rm -rf "$WORK/ck" "$WORK/kr_events.csv" "$WORK/kr_ues.csv"
  if CPG_FAILPOINTS_RANK2="dist.send_frame=fatal(1,0,$SKIP,1)" \
      $RUN "$GEN" "${ARGS[@]}" --ranks 4 --out "$WORK/kr" \
      --checkpoint-dir "$WORK/ck" --checkpoint-interval 2 2> "$WORK/kill.err"
  then
    echo "dist_smoke: killed run unexpectedly exited 0" >&2
    exit 1
  fi
  grep -q "rank 2" "$WORK/kill.err" || {
    echo "dist_smoke: coordinator error did not name the dead rank:" >&2
    cat "$WORK/kill.err" >&2
    exit 1
  }
  [[ -f "$WORK/ck/dist.manifest" ]] || {
    echo "dist_smoke: no distributed checkpoint committed before the kill" >&2
    exit 1
  }
  $RUN "$GEN" "${ARGS[@]}" --ranks 4 --out "$WORK/kr" \
    --checkpoint-dir "$WORK/ck" --checkpoint-interval 2 --resume
  cmp "$WORK/ref_events.csv" "$WORK/kr_events.csv"
  cmp "$WORK/ref_ues.csv" "$WORK/kr_ues.csv"
  echo "   resumed run byte-identical"
done

echo "== 4-rank cpgt run converts to the reference CSV byte-identically"
CAT="$BUILD_DIR/trace_cat"
if [[ ! -x "$CAT" ]]; then
  echo "dist_smoke: $CAT not found (build first)" >&2
  exit 2
fi
$RUN "$GEN" "${ARGS[@]}" --ranks 4 --out "$WORK/b4" --format cpgt
[[ -f "$WORK/b4.cpgt" ]] || {
  echo "dist_smoke: 4-rank cpgt run produced no b4.cpgt" >&2
  exit 1
}
$RUN "$CAT" to-csv "$WORK/b4.cpgt" "$WORK/b4"
cmp "$WORK/ref_events.csv" "$WORK/b4_events.csv"
cmp "$WORK/ref_ues.csv" "$WORK/b4_ues.csv"
echo "   cpgt -> CSV byte-identical to the single-process reference"

$RUN "$CAT" to-cpgt "$WORK/ref" "$WORK/rt.cpgt"
$RUN "$CAT" to-csv "$WORK/rt.cpgt" "$WORK/rt"
cmp "$WORK/ref_events.csv" "$WORK/rt_events.csv"
cmp "$WORK/ref_ues.csv" "$WORK/rt_ues.csv"
echo "   CSV -> cpgt -> CSV round trip reproduces itself"

echo "== worker death without checkpoints is a clean coordinator error"
if CPG_FAILPOINTS_RANK1='dist.send_frame=fatal(1,0,5,1)' \
    $RUN "$GEN" "${ARGS[@]}" --ranks 3 --out "$WORK/dead" \
    2> "$WORK/dead.err"
then
  echo "dist_smoke: run with a dead rank unexpectedly exited 0" >&2
  exit 1
fi
grep -q "rank 1" "$WORK/dead.err" || {
  echo "dist_smoke: coordinator did not name the dead rank:" >&2
  cat "$WORK/dead.err" >&2
  exit 1
}
echo "   coordinator surfaced the dead rank and exited"

echo "dist_smoke: OK"
