#!/usr/bin/env bash
# End-to-end fault-tolerance smoke test for the streaming runtime
# (DESIGN.md "Failure semantics & recovery"):
#
#   1. reference : undisturbed run -> golden CSVs
#   2. retry     : sink.deliver armed with 3 transient errors; the
#                  supervised sink retries through them -> identical CSVs
#   3. kill+resume: stream.deliver_slice armed fatal at slice 12 with
#                  checkpoints every 5 slices; the run dies nonzero, then
#                  --resume completes it -> identical CSVs
#
# Usage: scripts/fault_smoke.sh [build-dir]   (default: ./build)
set -euo pipefail

BUILD_DIR="${1:-build}"
GEN="$BUILD_DIR/stream_gen"
if [[ ! -x "$GEN" ]]; then
  echo "fault_smoke: $GEN not found (build first, or pass the build dir)" >&2
  exit 2
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# Small but multi-slice: 1 h at 5-min slices = 12 slices. No --model fits a
# deterministic demo model, so all runs agree byte-for-byte.
ARGS=(--phones 800 --cars 200 --hours 1 --seed 7 --shards 4 --threads 2
      --slice-min 5)

echo "== reference run"
"$GEN" "${ARGS[@]}" --out "$WORK/ref"

echo "== retry recovery (3 injected transient sink errors)"
CPG_FAILPOINTS='sink.deliver=error(1,0,0,3)' \
  "$GEN" "${ARGS[@]}" --out "$WORK/retry" --sink-policy fail
cmp "$WORK/ref_events.csv" "$WORK/retry_events.csv"
cmp "$WORK/ref_ues.csv" "$WORK/retry_ues.csv"
echo "   retry run byte-identical"

echo "== kill at slice 10 (checkpoints every 5 slices)"
if CPG_FAILPOINTS='stream.deliver_slice=fatal(1,0,10,1)' \
    "$GEN" "${ARGS[@]}" --out "$WORK/run" \
    --checkpoint-dir "$WORK/ck" --checkpoint-interval 5; then
  echo "fault_smoke: killed run unexpectedly exited 0" >&2
  exit 1
fi
[[ -f "$WORK/ck/stream.ckpt" ]] || {
  echo "fault_smoke: no checkpoint written before the kill" >&2; exit 1; }
[[ ! -f "$WORK/run_events.csv" ]] || {
  echo "fault_smoke: killed run left a final (non-.tmp) CSV" >&2; exit 1; }

echo "== resume"
"$GEN" "${ARGS[@]}" --out "$WORK/run" \
  --checkpoint-dir "$WORK/ck" --checkpoint-interval 5 --resume
cmp "$WORK/ref_events.csv" "$WORK/run_events.csv"
cmp "$WORK/ref_ues.csv" "$WORK/run_ues.csv"
[[ ! -f "$WORK/ck/stream.ckpt" ]] || {
  echo "fault_smoke: completed run left its checkpoint behind" >&2; exit 1; }
echo "   resumed run byte-identical"

echo "fault_smoke: OK"
