#!/usr/bin/env python3
"""Aggregate machine-readable bench results into a trend file.

Every bench binary that emits a BENCH_<name>.json (stream_throughput,
gen_hotpath, dist_throughput, ...) drops it in the repo root. This script
folds all of them into one BENCH_trajectory.json: the flattened numeric
metrics of each bench, keyed by bench name, plus a bounded history of past
snapshots so throughput regressions are visible as a trend rather than a
single point. Run it at the end of a bench sweep (scripts/run_benches.sh
does), or manually after any individual bench.

Usage: scripts/bench_trend.py [--root DIR] [--max-history N]
"""

import argparse
import json
import os
import subprocess
import sys

TRAJECTORY = "BENCH_trajectory.json"
MAX_HISTORY_DEFAULT = 50


def flatten(value, prefix=""):
    """Flattens nested dicts/lists to dotted keys, keeping numeric leaves."""
    out = {}
    if isinstance(value, dict):
        for k, v in value.items():
            key = f"{prefix}.{k}" if prefix else str(k)
            out.update(flatten(v, key))
    elif isinstance(value, list):
        for i, v in enumerate(value):
            out.update(flatten(v, f"{prefix}[{i}]"))
    elif isinstance(value, bool):
        pass  # bools are ints in Python; not a metric
    elif isinstance(value, (int, float)):
        out[prefix] = value
    return out


def git_describe(root):
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=root, capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def collect(root):
    benches = {}
    for name in sorted(os.listdir(root)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        if name == TRAJECTORY:
            continue
        path = os.path.join(root, name)
        try:
            with open(path) as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"bench_trend: skipping {name}: {e}", file=sys.stderr)
            continue
        if not isinstance(data, dict):
            print(f"bench_trend: skipping {name}: not a JSON object",
                  file=sys.stderr)
            continue
        bench = data.get("bench", name[len("BENCH_"):-len(".json")])
        benches[bench] = {"file": name, "metrics": flatten(data)}
    return benches


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=None,
                    help="directory holding BENCH_*.json (default: repo root)")
    ap.add_argument("--max-history", type=int, default=MAX_HISTORY_DEFAULT)
    args = ap.parse_args()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    benches = collect(root)
    if not benches:
        print("bench_trend: no BENCH_*.json found, nothing to do")
        return 0

    out_path = os.path.join(root, TRAJECTORY)
    history = []
    if os.path.exists(out_path):
        try:
            with open(out_path) as f:
                prev = json.load(f)
            if not isinstance(prev, dict):
                raise ValueError(f"expected a JSON object, got "
                                 f"{type(prev).__name__}")
            # A hand-edited or truncated trajectory must never kill the
            # sweep: tolerate a null/non-list history and non-dict entries,
            # keeping whatever is well-formed.
            history = prev.get("history") or []
            if not isinstance(history, list):
                print(f"bench_trend: {TRAJECTORY} history is not a list; "
                      "starting fresh", file=sys.stderr)
                history = []
            history = [h for h in history if isinstance(h, dict)]
            latest = prev.get("latest")
            if not isinstance(latest, dict):
                latest = None
            # The previous latest becomes the first history entry unless it
            # is already recorded (same commit re-run just replaces it).
            if latest and (not history or
                           history[0].get("commit") != latest.get("commit")):
                history.insert(0, latest)
        except (OSError, json.JSONDecodeError, ValueError) as e:
            print(f"bench_trend: ignoring unreadable {TRAJECTORY}: {e}",
                  file=sys.stderr)
            history = []

    commit = git_describe(root)
    history = [h for h in history if h.get("commit") != commit]
    history = history[: args.max_history]

    trajectory = {
        "generated_by": "scripts/bench_trend.py",
        "latest": {"commit": commit, "benches": benches},
        "history": history,
    }
    tmp = out_path + ".tmp"
    with open(tmp, "w") as f:
        json.dump(trajectory, f, indent=2, sort_keys=True)
        f.write("\n")
    os.replace(tmp, out_path)

    print(f"bench_trend: {len(benches)} bench(es) at {commit} -> {out_path}")
    for bench, entry in sorted(benches.items()):
        eps = [v for k, v in entry["metrics"].items()
               if k.endswith("events_per_sec")]
        if eps:
            print(f"  {bench}: max events/s {max(eps):,.0f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
