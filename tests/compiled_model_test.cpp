// Equivalence tests for the compiled sampling plan (model/compiled.h): the
// compiled hot path must agree with the legacy ModelSet walk — exactly where
// exactness is promised (LUT borrows, alias outcome probabilities, the step
// table) and distributionally where only the RNG consumption differs.
#include <algorithm>
#include <array>
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "generator/traffic_generator.h"
#include "model/compiled.h"
#include "model/fit.h"
#include "statemachine/machine.h"
#include "stats/gof.h"
#include "test_util.h"

namespace cpg {
namespace {

model::CompiledModel fresh_plan() {
  model::CompiledModel m;
  m.samplers.push_back(model::SamplerRef{});  // slot 0: the zero sampler
  return m;
}

model::StateLaw make_law(
    std::initializer_list<std::pair<int, double>> edges) {
  model::StateLaw law;
  for (const auto& [edge, p] : edges) {
    model::TransitionLaw t;
    t.edge = edge;
    t.probability = p;
    law.out.push_back(std::move(t));
  }
  return law;
}

// Draws `n` outcomes from a compiled law and returns counts per edge id
// (index k_num is the residual / no-transition outcome).
std::vector<std::uint64_t> draw_alias(const model::CompiledModel& m,
                                      model::CompiledLaw law, int max_edge,
                                      std::size_t n, Rng& rng) {
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(max_edge) + 2,
                                    0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto pick = model::sample_alias(m, law, rng);
    const std::size_t slot = pick.edge < 0
                                 ? counts.size() - 1
                                 : static_cast<std::size_t>(pick.edge);
    ++counts[slot];
  }
  return counts;
}

TEST(AliasTable, ChiSquareMatchesExactProbabilities) {
  auto m = fresh_plan();
  const auto law =
      compile_state_law(m, make_law({{0, 0.5}, {1, 0.3}, {2, 0.1}}));
  ASSERT_TRUE(law.has_data());

  constexpr std::size_t n = 200'000;
  Rng rng(20240805, 1);
  const auto counts = draw_alias(m, law, 2, n, rng);
  const double expect[] = {0.5, 0.3, 0.1, 0.1};  // last = residual mass
  double chi2 = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    const double e = expect[i] * static_cast<double>(n);
    const double d = static_cast<double>(counts[i]) - e;
    chi2 += d * d / e;
  }
  // 3 degrees of freedom; chi2_{0.999} = 16.27.
  EXPECT_LT(chi2, 16.27) << "counts: " << counts[0] << " " << counts[1]
                         << " " << counts[2] << " " << counts[3];
}

TEST(AliasTable, SuperUnityLawTruncatesAtOne) {
  // sample_edge() walks the unnormalized cumulative masses against
  // r ~ U[0,1): a law summing past 1 (nextg frequency boosts) gives edge 0
  // its full 0.8 and edge 1 only the remaining 0.2. The compiled table must
  // reproduce that truncation, with no residual outcome.
  auto m = fresh_plan();
  const auto law = compile_state_law(m, make_law({{0, 0.8}, {1, 0.5}}));

  constexpr std::size_t n = 200'000;
  Rng rng(20240805, 2);
  const auto counts = draw_alias(m, law, 1, n, rng);
  EXPECT_EQ(counts[2], 0u) << "super-unity law produced a residual outcome";
  const double expect[] = {0.8, 0.2};
  double chi2 = 0.0;
  for (std::size_t i = 0; i < 2; ++i) {
    const double e = expect[i] * static_cast<double>(n);
    const double d = static_cast<double>(counts[i]) - e;
    chi2 += d * d / e;
  }
  EXPECT_LT(chi2, 10.83);  // 1 dof, p = 0.001
}

TEST(AliasTable, FullMassWithinSlackNeverReturnsResidual) {
  auto m = fresh_plan();
  const auto law =
      compile_state_law(m, make_law({{0, 0.6}, {1, 0.4 - 1e-8}}));
  Rng rng(20240805, 3);
  for (std::size_t i = 0; i < 50'000; ++i) {
    EXPECT_GE(model::sample_alias(m, law, rng).edge, 0);
  }
}

TEST(CompiledSampler, SmallEmpiricalLutIsExact) {
  std::vector<double> sample;
  Rng rng(20240805, 4);
  for (int i = 0; i < 500; ++i) sample.push_back(rng.lognormal(1.0, 0.8));
  const stats::Empirical emp(sample);

  auto m = fresh_plan();
  const std::uint32_t s = compile_sampler(m, emp);
  ASSERT_EQ(m.samplers[s].kind, model::SamplerRef::Kind::lut_ext);
  for (int i = 0; i <= 1000; ++i) {
    const double p = static_cast<double>(i) / 1000.0;
    EXPECT_DOUBLE_EQ(model::lut_quantile(m, s, p), emp.quantile(p));
  }
}

TEST(CompiledSampler, LargeEmpiricalLutIsBorrowedExactly) {
  // Unscaled pools above k_lut_knots are borrowed in place (lut_ext), not
  // resampled: the compiled quantile matches Empirical::quantile exactly
  // and the pool contributes nothing to the knots arena.
  std::vector<double> sample;
  Rng rng(20240805, 5);
  for (int i = 0; i < 5000; ++i) sample.push_back(rng.pareto(0.5, 1.7));
  const stats::Empirical emp(sample);

  auto m = fresh_plan();
  const std::uint32_t s = compile_sampler(m, emp);
  ASSERT_EQ(m.samplers[s].kind, model::SamplerRef::Kind::lut_ext);
  EXPECT_TRUE(m.knots.empty());
  for (int i = 0; i <= 4096; ++i) {
    const double p = static_cast<double>(i) / 4096.0;
    EXPECT_DOUBLE_EQ(model::lut_quantile(m, s, p), emp.quantile(p));
  }
}

TEST(CompiledSampler, ScaledLargeEmpiricalLutWithinCellBound) {
  // A *scaled* pool above k_lut_knots (nextg frequency scaling) is
  // resampled onto a 1024-cell grid. The LUT interpolates linearly inside
  // a cell, so its value stays within the cell's quantile span
  // [Q(i/1024), Q((i+1)/1024)] — the DESIGN.md error bound — and is exact
  // at the knots themselves.
  std::vector<double> sample;
  Rng rng(20240805, 5);
  for (int i = 0; i < 5000; ++i) sample.push_back(rng.pareto(0.5, 1.7));
  const auto emp = std::make_shared<const stats::Empirical>(sample);
  const stats::Scaled scaled(emp, 2.5);

  auto m = fresh_plan();
  const std::uint32_t s = compile_sampler(m, scaled);
  ASSERT_EQ(m.samplers[s].kind, model::SamplerRef::Kind::lut);
  constexpr double cells = model::k_lut_knots - 1;
  for (int i = 0; i <= 4096; ++i) {
    const double p = static_cast<double>(i) / 4096.0;
    const double q = model::lut_quantile(m, s, p);
    const double cell = std::min(std::floor(p * cells), cells - 1);
    EXPECT_GE(q, scaled.quantile(cell / cells) - 1e-9);
    EXPECT_LE(q, scaled.quantile((cell + 1) / cells) + 1e-9);
  }
  for (int i = 0; i <= 1024; ++i) {
    const double p = static_cast<double>(i) / cells;
    EXPECT_NEAR(model::lut_quantile(m, s, p), scaled.quantile(p), 1e-9);
  }
}

class CompiledModelFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_ = new Trace(testutil::small_ground_truth(300, 48.0, 11));
    model::FitOptions opts;
    opts.method = model::Method::ours;
    opts.clustering.theta_n = 20;
    opts.seed = 99;
    models_ = new model::ModelSet(model::fit_model(*trace_, opts));
  }
  static void TearDownTestSuite() {
    delete models_;
    models_ = nullptr;
    delete trace_;
    trace_ = nullptr;
  }

  static Trace* trace_;
  static model::ModelSet* models_;
};

Trace* CompiledModelFixture::trace_ = nullptr;
model::ModelSet* CompiledModelFixture::models_ = nullptr;

TEST_F(CompiledModelFixture, SojournsMatchLegacyKs) {
  const auto plan = model::compile(*models_);

  // Find a fitted top-state law with edge data and compare N draws through
  // both paths: same model, different RNG consumption, so agreement is
  // distributional (two-sample K-S), not byte-wise.
  for (DeviceType d : k_all_device_types) {
    const model::DeviceModel& dev = models_->device(d);
    if (!dev.has_ues()) continue;
    for (TopState s : k_all_top_states) {
      const model::StateLaw* law = model::resolve_top_law(dev, 12, 0, s);
      if (law == nullptr || !law->has_data()) continue;

      const auto& row = plan.device(d).row(12, 0);
      const auto claw = row.top[index_of(s)];
      ASSERT_TRUE(claw.has_data());

      constexpr std::size_t n = 20'000;
      std::vector<double> legacy, compiled;
      Rng rng_a(7, 1), rng_b(7, 2);
      std::size_t legacy_hits = 0, compiled_hits = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const auto st = model::sample_transition(*law, rng_a);
        if (st.edge >= 0) {
          ++legacy_hits;
          legacy.push_back(st.sojourn_s);
        }
        const auto pick = model::sample_alias(plan, claw, rng_b);
        if (pick.edge >= 0) {
          ++compiled_hits;
          compiled.push_back(
              std::max(0.0, model::sample_value(plan, pick.sampler, rng_b)));
        }
      }
      // Transition rates agree within sampling noise...
      EXPECT_NEAR(static_cast<double>(legacy_hits) / n,
                  static_cast<double>(compiled_hits) / n, 0.02);
      // ...and so do the sojourn laws.
      ASSERT_FALSE(legacy.empty());
      ASSERT_FALSE(compiled.empty());
      std::sort(legacy.begin(), legacy.end());
      std::sort(compiled.begin(), compiled.end());
      EXPECT_LT(stats::ks_two_sample_statistic(legacy, compiled), 0.025);
      return;  // one populated law is enough
    }
  }
  FAIL() << "no fitted top-state law found";
}

TEST_F(CompiledModelFixture, CompileIsDeterministic) {
  const auto a = model::compile(*models_);
  const auto b = model::compile(*models_);
  ASSERT_EQ(a.samplers.size(), b.samplers.size());
  for (std::size_t i = 0; i < a.samplers.size(); ++i) {
    EXPECT_EQ(a.samplers[i].kind, b.samplers[i].kind);
    EXPECT_EQ(a.samplers[i].a, b.samplers[i].a);
    EXPECT_EQ(a.samplers[i].b, b.samplers[i].b);
    EXPECT_EQ(a.samplers[i].lut_base, b.samplers[i].lut_base);
    EXPECT_EQ(a.samplers[i].lut_len, b.samplers[i].lut_len);
    EXPECT_EQ(a.samplers[i].ext, b.samplers[i].ext);
  }
  EXPECT_EQ(a.knots, b.knots);
  ASSERT_EQ(a.slots.size(), b.slots.size());
  for (std::size_t i = 0; i < a.slots.size(); ++i) {
    EXPECT_EQ(a.slots[i].threshold, b.slots[i].threshold);
    EXPECT_EQ(a.slots[i].edge, b.slots[i].edge);
    EXPECT_EQ(a.slots[i].sampler, b.slots[i].sampler);
  }
  EXPECT_EQ(a.stats.rows, b.stats.rows);
  EXPECT_EQ(a.stats.laws, b.stats.laws);
  EXPECT_EQ(a.stats.samplers, b.stats.samplers);
}

TEST_F(CompiledModelFixture, SampleValuesMatchesSampleValueBitwise) {
  // sample_values() promises the exact values (and RNG consumption) of n
  // successive sample_value() calls, for every sampler kind the compiled
  // plan contains — the batch sink path leans on this to reorder the LUT
  // reads without changing a single emitted timestamp.
  const auto plan = model::compile(*models_);
  ASSERT_GT(plan.samplers.size(), 1u);

  constexpr std::size_t n = 257;  // odd size: exercises the tail of the batch
  std::array<bool, 8> kind_seen{};
  for (std::uint32_t s = 0; s < plan.samplers.size(); ++s) {
    kind_seen[static_cast<std::size_t>(plan.samplers[s].kind)] = true;
    Rng rng_a(11, s), rng_b(11, s);
    std::vector<double> one_by_one(n), batched(n);
    for (std::size_t i = 0; i < n; ++i) {
      one_by_one[i] = model::sample_value(plan, s, rng_a);
    }
    model::sample_values(plan, s, rng_b, batched.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(one_by_one[i], batched[i])
          << "sampler " << s << " draw " << i;
    }
    // Identical RNG consumption: the next draw from each stream agrees.
    EXPECT_EQ(rng_a.uniform(), rng_b.uniform()) << "sampler " << s;
  }
  // The fixture's fitted models must cover the fast paths under test.
  EXPECT_TRUE(kind_seen[static_cast<std::size_t>(model::SamplerRef::Kind::zero)]);
  EXPECT_TRUE(kind_seen[static_cast<std::size_t>(model::SamplerRef::Kind::lut)] ||
              kind_seen[static_cast<std::size_t>(model::SamplerRef::Kind::lut_ext)]);
}

TEST_F(CompiledModelFixture, DedupKeepsArenasSmall) {
  const auto plan = model::compile(*models_);
  EXPECT_GT(plan.stats.rows, 0u);
  EXPECT_GT(plan.stats.laws, 0u);
  EXPECT_GT(plan.stats.samplers, 1u);
  EXPECT_GT(plan.stats.arena_bytes, 0u);
  // The pooled fallbacks alone guarantee cross-(cluster, hour) reuse.
  EXPECT_GT(plan.stats.dedup_hits, 0u);
  // The build-time index must not linger on the hot-path object.
  EXPECT_TRUE(plan.sampler_index.empty());
}

TEST_F(CompiledModelFixture, GeneratedTraceMatchesLegacyDistribution) {
  gen::GenerationRequest req;
  req.ue_counts = {120, 60, 30};
  req.start_hour = 10;
  req.duration_hours = 6.0;
  req.seed = 404;
  req.num_threads = 2;

  req.ue_options.use_compiled = false;
  const Trace legacy = gen::generate_trace(*models_, req);
  req.ue_options.use_compiled = true;
  const Trace compiled = gen::generate_trace(*models_, req);

  ASSERT_GT(legacy.num_events(), 100u);
  ASSERT_GT(compiled.num_events(), 100u);
  const double ratio = static_cast<double>(compiled.num_events()) /
                       static_cast<double>(legacy.num_events());
  EXPECT_GT(ratio, 0.85);
  EXPECT_LT(ratio, 1.18);

  std::array<std::uint64_t, k_num_event_types> la{}, ca{};
  for (const ControlEvent& e : legacy.events()) ++la[index_of(e.type)];
  for (const ControlEvent& e : compiled.events()) ++ca[index_of(e.type)];
  for (std::size_t t = 0; t < k_num_event_types; ++t) {
    const double lf = static_cast<double>(la[t]) /
                      static_cast<double>(legacy.num_events());
    const double cf = static_cast<double>(ca[t]) /
                      static_cast<double>(compiled.num_events());
    EXPECT_NEAR(lf, cf, 0.03) << "event type " << t;
  }
}

TEST(CompiledStepTable, MatchesLiveMachineOnRandomSequences) {
  for (const model::Method method :
       {model::Method::ours, model::Method::base}) {
    model::ModelSet set;
    set.method = method;
    set.spec = &model::spec_for(method);
    const auto plan = model::compile(set);

    Rng rng(31337, static_cast<std::uint64_t>(method));
    for (int run = 0; run < 64; ++run) {
      const EventType first =
          k_all_event_types[rng.uniform_index(k_num_event_types)];
      sm::TwoLevelMachine machine(*set.spec, sm::infer_initial_top(first));
      TopState top = machine.top();
      SubState sub = machine.sub();
      for (int step = 0; step < 256; ++step) {
        const EventType e =
            k_all_event_types[rng.uniform_index(k_num_event_types)];
        machine.apply(e);
        const model::StepEntry s = plan.step(top, sub, e);
        top = s.top;
        sub = s.sub;
        ASSERT_EQ(top, machine.top())
            << "method " << static_cast<int>(method) << " run " << run
            << " step " << step;
        ASSERT_EQ(sub, machine.sub())
            << "method " << static_cast<int>(method) << " run " << run
            << " step " << step;
      }
    }
  }
}

TEST(CompiledGenerator, DeviceWithoutModeledUesStaysSilent) {
  // Regression: a DeviceModel with no fitted UEs has no cluster trajectory;
  // cluster lookups must fall back to the pooled chain instead of
  // dereferencing a null trajectory, on both sampling paths.
  model::ModelSet set;
  set.method = model::Method::ours;
  set.spec = &model::spec_for(set.method);
  set.num_days_fitted = 1;
  const auto plan = model::compile(set);

  for (const model::CompiledModel* cm : {(const model::CompiledModel*)nullptr,
                                         &plan}) {
    gen::UeGenOptions options;
    options.compiled = cm;
    gen::UeSliceGenerator g(set, DeviceType::phone, 0, 0,
                            4 * k_ms_per_hour, 1, Rng(5, 6), options);
    std::vector<ControlEvent> out;
    while (g.advance(4 * k_ms_per_hour, out)) {
    }
    EXPECT_TRUE(g.done());
    EXPECT_TRUE(out.empty());
  }
}

}  // namespace
}  // namespace cpg
