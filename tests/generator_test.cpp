#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>

#include "generator/traffic_generator.h"
#include "model/fit.h"
#include "statemachine/replay.h"
#include "test_util.h"

namespace cpg::gen {
namespace {

const model::ModelSet& ours_model() {
  static const model::ModelSet set = [] {
    model::FitOptions opts;
    opts.method = model::Method::ours;
    opts.clustering.theta_n = 30;
    return model::fit_model(testutil::small_ground_truth(200, 48.0, 11),
                            opts);
  }();
  return set;
}

GenerationRequest small_request() {
  GenerationRequest req;
  req.ue_counts = {120, 50, 30};
  req.start_hour = 10;
  req.duration_hours = 1.0;
  req.seed = 99;
  req.num_threads = 2;
  return req;
}

TEST(Generator, ProducesFinalizedTraceInWindow) {
  const Trace t = generate_trace(ours_model(), small_request());
  ASSERT_TRUE(t.finalized());
  EXPECT_EQ(t.num_ues(), 200u);
  ASSERT_FALSE(t.empty());
  EXPECT_GE(t.begin_time(), 10 * k_ms_per_hour);
  EXPECT_LT(t.end_time(), 11 * k_ms_per_hour);
}

TEST(Generator, EveryEventHasValidOwner) {
  // Design goal 2 (§3.2): event-owner labeling.
  const Trace t = generate_trace(ours_model(), small_request());
  for (const ControlEvent& e : t.events()) {
    ASSERT_LT(e.ue_id, t.num_ues());
  }
  // Most UEs are active in a busy hour (the first-event model always emits
  // unless the window truncates it).
  std::vector<bool> active(t.num_ues(), false);
  for (const ControlEvent& e : t.events()) active[e.ue_id] = true;
  std::size_t count = 0;
  for (bool a : active) count += a ? 1 : 0;
  EXPECT_GT(count, t.num_ues() / 2);
}

TEST(Generator, OursTraceConformsToTwoLevelMachine) {
  const Trace t = generate_trace(ours_model(), small_request());
  EXPECT_EQ(sm::count_violations(sm::lte_two_level_spec(), t), 0u);
}

TEST(Generator, DeterministicAcrossThreadCounts) {
  GenerationRequest req = small_request();
  req.num_threads = 1;
  const Trace a = generate_trace(ours_model(), req);
  req.num_threads = 4;
  const Trace b = generate_trace(ours_model(), req);
  ASSERT_EQ(a.num_events(), b.num_events());
  for (std::size_t i = 0; i < a.num_events(); ++i) {
    EXPECT_EQ(a.events()[i], b.events()[i]);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  GenerationRequest req = small_request();
  const Trace a = generate_trace(ours_model(), req);
  req.seed = 100;
  const Trace b = generate_trace(ours_model(), req);
  EXPECT_NE(a.num_events(), b.num_events());
}

TEST(Generator, ScalabilityTenfoldPopulation) {
  // Design goal 3 (§3.2): arbitrary UE population with proportional volume.
  GenerationRequest req = small_request();
  const Trace small = generate_trace(ours_model(), req);
  const Trace big = generate_trace(ours_model(), scaled(req, 10.0));
  EXPECT_EQ(big.num_ues(), 10 * small.num_ues());
  const double ratio = static_cast<double>(big.num_events()) /
                       static_cast<double>(small.num_events());
  EXPECT_GT(ratio, 6.0);
  EXPECT_LT(ratio, 15.0);
}

TEST(Generator, ScaledHelperRounds) {
  GenerationRequest req;
  req.ue_counts = {10, 5, 1};
  const auto big = scaled(req, 2.5);
  EXPECT_EQ(big.ue_counts[0], 25u);
  EXPECT_EQ(big.ue_counts[1], 13u);  // llround(2.5)
  EXPECT_EQ(big.ue_counts[2], 3u);
}

TEST(Generator, EmptyRequestIsRejected) {
  // A request for zero UEs is a caller bug, not a silent empty trace.
  GenerationRequest req;
  try {
    generate_trace(ours_model(), req);
    FAIL() << "empty request must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("ue_counts"), std::string::npos);
  }
}

TEST(Generator, ValidationNamesTheBadField) {
  // Each malformed field is rejected before any work, and the error says
  // which field is at fault.
  const auto field_of = [](const GenerationRequest& req) -> std::string {
    try {
      validate(req);
    } catch (const std::invalid_argument& e) {
      return e.what();
    }
    return "";
  };
  GenerationRequest req = small_request();
  EXPECT_EQ(field_of(req), "");

  for (int hour : {-1, 24, 100}) {
    GenerationRequest bad = req;
    bad.start_hour = hour;
    EXPECT_NE(field_of(bad).find("start_hour"), std::string::npos)
        << "start_hour = " << hour;
  }
  for (double dur : {0.0, -2.0, std::numeric_limits<double>::infinity(),
                     std::numeric_limits<double>::quiet_NaN()}) {
    GenerationRequest bad = req;
    bad.duration_hours = dur;
    EXPECT_NE(field_of(bad).find("duration_hours"), std::string::npos)
        << "duration_hours = " << dur;
  }
  GenerationRequest bad = req;
  bad.ue_counts = {0, 0, 0};
  EXPECT_NE(field_of(bad).find("ue_counts"), std::string::npos);
}

TEST(Generator, MultiHourGenerationCrossesHours) {
  GenerationRequest req = small_request();
  req.duration_hours = 3.0;
  const Trace t = generate_trace(ours_model(), req);
  ASSERT_FALSE(t.empty());
  EXPECT_GE(t.end_time(), 12 * k_ms_per_hour);
  EXPECT_EQ(sm::count_violations(sm::lte_two_level_spec(), t), 0u);
}

TEST(Generator, BaseMethodEmitsHoInIdle) {
  // The EMM-ECM baseline cannot tie HO to CONNECTED: replay must observe
  // HO-in-IDLE violations (this is what Tables 4/11 show for Base).
  model::FitOptions opts;
  opts.method = model::Method::base;
  const auto base_set =
      model::fit_model(testutil::small_ground_truth(200, 48.0, 11), opts);
  const Trace t = generate_trace(base_set, small_request());
  const auto bd = sm::compute_state_breakdown(sm::lte_two_level_spec(), t);
  std::uint64_t ho_idle = 0;
  for (DeviceType d : k_all_device_types) {
    ho_idle += bd.counts[index_of(d)][5];
  }
  EXPECT_GT(ho_idle, 0u);
}

TEST(Generator, RespectActivityProbabilityReducesActiveUes) {
  GenerationRequest req = small_request();
  req.ue_options.respect_activity_probability = false;
  const Trace always = generate_trace(ours_model(), req);
  req.ue_options.respect_activity_probability = true;
  const Trace gated = generate_trace(ours_model(), req);
  auto active_count = [](const Trace& t) {
    std::vector<bool> active(t.num_ues(), false);
    for (const ControlEvent& e : t.events()) active[e.ue_id] = true;
    std::size_t n = 0;
    for (bool a : active) n += a ? 1 : 0;
    return n;
  };
  EXPECT_LT(active_count(gated), active_count(always));
}

TEST(Generator, MaxEventsCapIsHonored) {
  GenerationRequest req = small_request();
  req.ue_counts = {5, 0, 0};
  req.ue_options.max_events = 3;
  const Trace t = generate_trace(ours_model(), req);
  EXPECT_LE(t.num_events(), 5u * 3u);
}

TEST(Generator, MaxEventsCapIsPerUeNotPerWorker) {
  // Regression: the cap used to be checked against the worker's shared
  // output buffer, silently truncating every UE scheduled after the buffer
  // crossed the cap — which muted whole device classes in long generations.
  GenerationRequest req = small_request();
  req.ue_counts = {160, 0, 40};  // tablets are registered last
  req.num_threads = 1;           // single shared buffer = worst case
  req.ue_options.max_events = 4;
  const Trace t = generate_trace(ours_model(), req);
  std::vector<std::size_t> per_ue(t.num_ues(), 0);
  for (const ControlEvent& e : t.events()) ++per_ue[e.ue_id];
  std::size_t active_tablets = 0;
  for (std::size_t u = 0; u < t.num_ues(); ++u) {
    EXPECT_LE(per_ue[u], 4u);
    if (t.device(static_cast<UeId>(u)) == DeviceType::tablet &&
        per_ue[u] > 0) {
      ++active_tablets;
    }
  }
  // The late-registered device class still produces traffic.
  EXPECT_GT(active_tablets, 5u);
}

}  // namespace
}  // namespace cpg::gen
