#include <gtest/gtest.h>

#include "statemachine/replay.h"
#include "stats/gof.h"
#include "synthetic/workload.h"
#include "test_util.h"
#include "validation/micro.h"

namespace cpg::synthetic {
namespace {

const Trace& ground_truth() {
  static const Trace t = testutil::small_ground_truth(300, 72.0, 21);
  return t;
}

TEST(Workload, DefaultPopulationMix) {
  const auto opts = default_population(1000);
  EXPECT_EQ(opts.ue_counts[index_of(DeviceType::phone)], 630u);
  EXPECT_EQ(opts.ue_counts[index_of(DeviceType::connected_car)], 250u);
  EXPECT_EQ(opts.ue_counts[index_of(DeviceType::tablet)], 120u);
}

TEST(Workload, ConformsToTwoLevelMachine) {
  EXPECT_EQ(sm::count_violations(sm::lte_two_level_spec(), ground_truth()),
            0u);
}

TEST(Workload, EventsAreTimeOrderedAndOwned) {
  const Trace& t = ground_truth();
  TimeMs prev = -1;
  for (const ControlEvent& e : t.events()) {
    ASSERT_GE(e.t_ms, prev);
    ASSERT_LT(e.ue_id, t.num_ues());
    prev = e.t_ms;
  }
}

TEST(Workload, DeterministicForSeed) {
  auto opts = default_population(40);
  opts.duration_hours = 12.0;
  opts.num_threads = 1;
  const Trace a = generate_ground_truth(opts);
  opts.num_threads = 4;
  const Trace b = generate_ground_truth(opts);
  ASSERT_EQ(a.num_events(), b.num_events());
  for (std::size_t i = 0; i < a.num_events(); ++i) {
    EXPECT_EQ(a.events()[i], b.events()[i]);
  }
}

TEST(Workload, EventMixTracksPaperTable1) {
  const auto bd =
      sm::compute_state_breakdown(sm::lte_two_level_spec(), ground_truth());
  // Loose envelopes around the paper's Table 1 percentages.
  // Phones: SRV_REQ 45.5, S1 47.5, HO 3.8, TAU 2.9, ATCH 0.1, DTCH 0.2.
  const DeviceType p = DeviceType::phone;
  EXPECT_NEAR(bd.fraction(p, 2), 0.455, 0.05);
  EXPECT_NEAR(bd.fraction(p, 3), 0.475, 0.05);
  EXPECT_NEAR(bd.fraction(p, 4) + bd.fraction(p, 5), 0.038, 0.025);
  EXPECT_NEAR(bd.fraction(p, 6) + bd.fraction(p, 7), 0.029, 0.025);
  // Connected cars: more HO and TAU than phones (mobility), more
  // ATCH/DTCH (ignition cycles).
  const DeviceType c = DeviceType::connected_car;
  EXPECT_GT(bd.fraction(c, 4), bd.fraction(p, 4));
  EXPECT_GT(bd.fraction(c, 6) + bd.fraction(c, 7),
            bd.fraction(p, 6) + bd.fraction(p, 7));
  EXPECT_GT(bd.fraction(c, 0), bd.fraction(p, 0));
  // No HO in IDLE, ever (3GPP conformance).
  for (DeviceType d : k_all_device_types) {
    EXPECT_EQ(bd.counts[index_of(d)][5], 0u) << to_string(d);
  }
}

TEST(Workload, DiurnalPatternPresent) {
  const Trace& t = ground_truth();
  std::array<std::uint64_t, 24> by_hour{};
  for (const ControlEvent& e : t.events()) {
    ++by_hour[static_cast<std::size_t>(hour_of_day(e.t_ms))];
  }
  const auto peak = *std::max_element(by_hour.begin(), by_hour.end());
  const auto trough = *std::min_element(by_hour.begin(), by_hour.end());
  ASSERT_GT(trough, 0u);
  // The paper reports 2.27x..1309x peak-to-trough swings per event type;
  // in aggregate the swing is strong.
  EXPECT_GT(static_cast<double>(peak) / static_cast<double>(trough), 4.0);
}

TEST(Workload, ConnectedSojournIsNotExponential) {
  // The core §4 finding: classic families fail on the synthetic ground
  // truth as well (heavy-tailed mixtures by construction).
  auto sojourns = validation::state_sojourns(
      ground_truth(), sm::lte_two_level_spec(), DeviceType::phone,
      UeState::connected);
  ASSERT_GT(sojourns.size(), 1000u);
  if (sojourns.size() > 20'000) sojourns.resize(20'000);
  const auto r = stats::ad_test_exponential(sojourns);
  EXPECT_FALSE(r.passes());
}

TEST(Workload, PerUeActivityIsSkewed) {
  const auto counts = validation::events_per_ue(
      ground_truth(), DeviceType::phone, EventType::srv_req);
  ASSERT_FALSE(counts.empty());
  std::vector<double> sorted = counts;
  std::sort(sorted.begin(), sorted.end());
  const double p50 = sorted[sorted.size() / 2];
  const double p95 = sorted[static_cast<std::size_t>(
      0.95 * static_cast<double>(sorted.size() - 1))];
  ASSERT_GT(p50, 0.0);
  EXPECT_GT(p95 / p50, 2.0);  // heavy per-UE skew
}

TEST(Workload, CarsQuietAtNight) {
  const Trace& t = ground_truth();
  std::uint64_t night = 0, commute = 0, night_ho = 0, commute_ho = 0;
  for (const ControlEvent& e : t.events()) {
    if (t.device(e.ue_id) != DeviceType::connected_car) continue;
    const int h = hour_of_day(e.t_ms);
    if (h >= 2 && h < 5) {
      ++night;
      if (e.type == EventType::ho) ++night_ho;
    }
    if (h >= 7 && h < 9) {
      ++commute;
      if (e.type == EventType::ho) ++commute_ho;
    }
  }
  ASSERT_GT(commute, 0u);
  EXPECT_GT(commute, 8 * std::max<std::uint64_t>(night, 1));
  // HO essentially vanishes at night (paper Fig. 2: up to 1309x swing).
  EXPECT_GT(commute_ho, 40 * std::max<std::uint64_t>(night_ho, 1));
}

TEST(Workload, SingleUeSimulation) {
  Rng rng(5);
  std::vector<ControlEvent> out;
  simulate_ue(profile_for(DeviceType::phone), 6 * k_ms_per_hour, 3, rng,
              out);
  ASSERT_FALSE(out.empty());
  TimeMs prev = -1;
  for (const ControlEvent& e : out) {
    EXPECT_EQ(e.ue_id, 3u);
    EXPECT_GT(e.t_ms, prev);
    EXPECT_LT(e.t_ms, 6 * k_ms_per_hour);
    prev = e.t_ms;
  }
}

TEST(Profiles, DistinctPerDevice) {
  const DeviceProfile& p = profile_for(DeviceType::phone);
  const DeviceProfile& c = profile_for(DeviceType::connected_car);
  const DeviceProfile& t = profile_for(DeviceType::tablet);
  EXPECT_LT(p.p_off_at_session_end, t.p_off_at_session_end);
  EXPECT_LT(c.p_stationary, p.p_stationary);
  EXPECT_GT(c.mobile_session_length_factor, p.mobile_session_length_factor);
  EXPECT_LT(c.periodic_tau_s, t.periodic_tau_s);
}

}  // namespace
}  // namespace cpg::synthetic
