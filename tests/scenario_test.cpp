// Tests for the scenario engine (src/scenario/): spec parsing with
// line/field diagnostics, fingerprint semantics, compilation to population
// plans, and the executor-level guarantees — configuration-independent
// determinism for churning/migrating populations, lifecycle windows
// honored, phase notifications, and checkpoint/resume safety including the
// rejection of a resume under an edited spec.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "fault/failpoint.h"
#include "generator/traffic_generator.h"
#include "model/fit.h"
#include "scenario/scenario.h"
#include "scenario/spec.h"
#include "spatial/config.h"
#include "spatial/motion.h"
#include "stream/stream_generator.h"
#include "test_util.h"

namespace cpg::scenario {
namespace {

const model::ModelSet& lte_model() {
  static const model::ModelSet set = [] {
    model::FitOptions opts;
    opts.method = model::Method::ours;
    opts.clustering.theta_n = 30;
    return model::fit_model(testutil::small_ground_truth(200, 48.0, 11),
                            opts);
  }();
  return set;
}

// A scenario exercising every feature at once: a steady base with a leave
// wave, a flash crowd, an NSA migration wave, and an SA migration wave,
// under a phase timeline with a trailing gap.
constexpr const char* k_churny_spec = R"(# full-feature scenario
scenario churny
start-hour 9
duration 3

phase warmup 0 1
  mcn-scale 1.0
phase flash 1 2
  accel 50
  mcn-scale 2.5

cohort base
  device phone
  count 40
  join 0
  leave 2.5 2.9
cohort crowd
  device phone
  count 30
  join 1 1.2
  leave 1.8 2.0
cohort cars
  device car
  count 20
  migrate 1.5 nsa
cohort tabs
  device tablet
  count 10
  migrate 1 sa
)";

std::vector<ControlEvent> run_plan(const stream::PopulationPlan& plan,
                                   std::size_t shards, unsigned threads,
                                   TimeMs slice_ms) {
  stream::StreamOptions opts;
  opts.num_shards = shards;
  opts.num_threads = threads;
  opts.slice_ms = slice_ms;
  std::vector<ControlEvent> store;
  stream::CallbackSink sink(
      [&](const ControlEvent& e) { store.push_back(e); });
  stream::stream_generate(plan, opts, sink);
  return store;
}

// ---------------------------------------------------------------------------
// Parsing: every malformed input class dies with one line naming line+field.

struct BadSpec {
  const char* label;
  std::string text;
  int line;           // expected ":<line>:" in the diagnostic
  const char* field;  // expected "field '<field>'"
};

TEST(ScenarioSpec, MalformedInputsNameLineAndField) {
  const std::string ok_cohort = "cohort c\n  count 5\n";
  const std::vector<BadSpec> cases = {
      {"unknown key", "duration 2\nfrobnicate 3\n" + ok_cohort, 2,
       "frobnicate"},
      {"non-numeric value", "duration abc\n" + ok_cohort, 1, "duration"},
      {"zero duration", "duration 0\n" + ok_cohort, 1, "duration"},
      {"negative duration", "duration -4\n" + ok_cohort, 1, "duration"},
      {"missing duration", ok_cohort, 1, "duration"},
      {"fractional start hour", "start-hour 9.5\nduration 2\n" + ok_cohort,
       1, "start-hour"},
      {"out-of-range start hour", "start-hour 24\nduration 2\n" + ok_cohort,
       1, "start-hour"},
      {"wrong arity", "duration 2\nphase p 0\n" + ok_cohort, 2, "phase"},
      {"inverted phase", "duration 2\nphase p 1.5 0.5\n" + ok_cohort, 2,
       "phase"},
      {"phase past the end", "duration 2\nphase p 1 9\n" + ok_cohort, 2,
       "phase"},
      {"overlapping phases",
       "duration 4\nphase a 0 2\nphase b 1 3\n" + ok_cohort, 3, "phase"},
      {"accel outside a phase", "duration 2\naccel 10\n" + ok_cohort, 2,
       "accel"},
      {"non-positive accel", "duration 2\nphase p 0 1\naccel 0\n" +
                                 ok_cohort,
       3, "accel"},
      {"non-positive mcn-scale",
       "duration 2\nphase p 0 1\nmcn-scale -1\n" + ok_cohort, 3,
       "mcn-scale"},
      {"cohort key at top level", "duration 2\ncount 5\n" + ok_cohort, 2,
       "count"},
      {"no cohorts", "duration 2\n", 1, "cohort"},
      {"negative cohort size", "duration 2\ncohort c\n  count -5\n", 3,
       "count"},
      {"fractional cohort size", "duration 2\ncohort c\n  count 2.5\n", 3,
       "count"},
      {"missing cohort size", "duration 2\ncohort c\n  device phone\n", 2,
       "count"},
      {"unknown device", "duration 2\ncohort c\n  count 5\n  device toaster\n",
       4, "device"},
      {"unknown model", "duration 2\ncohort c\n  count 5\n  model 6g\n", 4,
       "model"},
      {"negative hour", "duration 2\ncohort c\n  count 5\n  join -1\n", 4,
       "join"},
      {"inverted join window",
       "duration 2\ncohort c\n  count 5\n  join 1.5 0.5\n", 4, "join"},
      {"join past the end", "duration 2\ncohort c\n  count 5\n  join 0 5\n",
       2, "join"},
      {"join at the end", "duration 2\ncohort c\n  count 5\n  join 2\n", 2,
       "join"},
      {"leave before join",
       "duration 3\ncohort c\n  count 5\n  join 1 2\n  leave 1.5 2.5\n", 2,
       "leave"},
      {"leave past the end",
       "duration 2\ncohort c\n  count 5\n  leave 1 9\n", 2, "leave"},
      {"migrate before join",
       "duration 3\ncohort c\n  count 5\n  join 1 2\n  migrate 1.5 nsa\n",
       2, "migrate"},
      {"migrate after leave",
       "duration 3\ncohort c\n  count 5\n  leave 1 2\n  migrate 2.5 nsa\n",
       2, "migrate"},
      {"migrate to the same model",
       "duration 2\ncohort c\n  count 5\n  migrate 1 lte\n", 2, "migrate"},
  };

  for (const BadSpec& bad : cases) {
    SCOPED_TRACE(bad.label);
    try {
      parse_scenario_string(bad.text, "spec.scn");
      FAIL() << "expected rejection";
    } catch (const ScenarioError& e) {
      const std::string msg = e.what();
      EXPECT_EQ(msg.find('\n'), std::string::npos) << msg;
      EXPECT_NE(
          msg.find("spec.scn:" + std::to_string(bad.line) + ":"),
          std::string::npos)
          << msg;
      EXPECT_NE(msg.find("field '" + std::string(bad.field) + "'"),
                std::string::npos)
          << msg;
    }
  }
}

TEST(ScenarioSpec, ParsesTheFullGrammar) {
  const ScenarioSpec spec = parse_scenario_string(k_churny_spec);
  EXPECT_EQ(spec.name, "churny");
  EXPECT_EQ(spec.start_hour, 9);
  EXPECT_DOUBLE_EQ(spec.duration_hours, 3.0);
  ASSERT_EQ(spec.phases.size(), 2u);
  EXPECT_EQ(spec.phases[0].name, "warmup");
  EXPECT_DOUBLE_EQ(spec.phases[1].accel, 50.0);
  EXPECT_DOUBLE_EQ(spec.phases[1].mcn_scale, 2.5);
  ASSERT_EQ(spec.cohorts.size(), 4u);
  EXPECT_EQ(spec.cohorts[1].name, "crowd");
  EXPECT_TRUE(spec.cohorts[1].has_leave);
  EXPECT_EQ(spec.cohorts[2].device, DeviceType::connected_car);
  ASSERT_TRUE(spec.cohorts[3].has_migrate);
  EXPECT_EQ(spec.cohorts[3].migrate_model, ModelKind::sa);
  EXPECT_NE(spec.fingerprint, 0u);
}

TEST(ScenarioSpec, FingerprintTracksContentNotFormatting) {
  const ScenarioSpec a = parse_scenario_string(k_churny_spec);
  // Same content, different bytes: comments, blank lines, indentation.
  std::string reformatted = "# reformatted\n\n";
  reformatted += k_churny_spec;
  reformatted += "\n# trailing comment\n";
  const ScenarioSpec b = parse_scenario_string(reformatted);
  EXPECT_EQ(a.fingerprint, b.fingerprint);

  std::string edited = k_churny_spec;
  const auto pos = edited.find("count 30");
  ASSERT_NE(pos, std::string::npos);
  edited.replace(pos, 8, "count 31");
  const ScenarioSpec c = parse_scenario_string(edited);
  EXPECT_NE(a.fingerprint, c.fingerprint);
}

// ---------------------------------------------------------------------------
// Compilation.

TEST(ScenarioCompile, BuildsTheExpectedPlan) {
  const ScenarioSpec spec = parse_scenario_string(k_churny_spec);
  CompileOptions copts;
  copts.seed = 7;
  const CompiledScenario sc = compile(spec, lte_model(), copts);
  const stream::PopulationPlan& plan = sc.plan;

  EXPECT_EQ(plan.seed, 7u);
  EXPECT_EQ(plan.fingerprint, spec.fingerprint);
  EXPECT_EQ(plan.t_begin, 9 * k_ms_per_hour);
  EXPECT_EQ(plan.t_end, 12 * k_ms_per_hour);
  ASSERT_EQ(plan.device_of.size(), 100u);  // 40 + 30 + 20 + 10
  EXPECT_EQ(plan.device_of[0], DeviceType::phone);
  EXPECT_EQ(plan.device_of[75], DeviceType::connected_car);
  EXPECT_EQ(plan.device_of[95], DeviceType::tablet);
  // lte + derived nsa + derived sa.
  EXPECT_EQ(plan.models.size(), 3u);
  EXPECT_EQ(sc.derived_models.size(), 2u);
  EXPECT_EQ(plan.models[0].models, &lte_model());
  ASSERT_EQ(plan.phases.size(), 2u);
  EXPECT_EQ(plan.phases[0].t_start, plan.t_begin);
  EXPECT_DOUBLE_EQ(plan.phases[1].accel, 50.0);

  // 40 + 30 single-segment UEs, 20 + 10 migrating (two segments each).
  ASSERT_EQ(plan.segments.size(), 130u);
  EXPECT_TRUE(std::is_sorted(
      plan.segments.begin(), plan.segments.end(),
      [](const stream::UeSegment& a, const stream::UeSegment& b) {
        return a.t_start != b.t_start ? a.t_start < b.t_start
                                      : a.ue < b.ue;
      }));

  std::map<UeId, std::vector<stream::UeSegment>> by_ue;
  for (const stream::UeSegment& s : plan.segments) by_ue[s.ue].push_back(s);
  ASSERT_EQ(by_ue.size(), 100u);
  std::uint64_t joins = 0, leaves = 0, migrations = 0;
  for (const auto& [ue, segs] : by_ue) {
    for (const stream::UeSegment& s : segs) {
      ASSERT_LT(s.model, plan.models.size());
      ASSERT_LT(s.t_start, s.t_end);
      joins += s.counts_join ? 1 : 0;
      leaves += s.counts_leave ? 1 : 0;
      migrations += s.counts_migration ? 1 : 0;
    }
    if (segs.size() == 2) {
      // A migration pair: contiguous, salts 0 then 1, models differ.
      EXPECT_EQ(segs[0].t_end, segs[1].t_start);
      EXPECT_EQ(segs[0].rng_salt, 0u);
      EXPECT_EQ(segs[1].rng_salt, 1u);
      EXPECT_NE(segs[0].model, segs[1].model);
      EXPECT_TRUE(segs[1].counts_migration);
    }
  }
  EXPECT_EQ(joins, 30u);       // the flash crowd
  EXPECT_EQ(leaves, 70u);      // base + crowd
  EXPECT_EQ(migrations, 30u);  // cars + tabs
}

TEST(ScenarioCompile, LifecycleDrawsAreInsideTheirWindows) {
  const ScenarioSpec spec = parse_scenario_string(k_churny_spec);
  const CompiledScenario sc = compile(spec, lte_model());
  const TimeMs t0 = sc.plan.t_begin;
  for (const stream::UeSegment& s : sc.plan.segments) {
    if (s.ue >= 40 && s.ue < 70) {  // the crowd cohort
      EXPECT_GE(s.t_start, t0 + k_ms_per_hour);
      EXPECT_LT(s.t_start, t0 + k_ms_per_hour + (k_ms_per_hour * 12) / 10);
      EXPECT_GE(s.t_end, t0 + (k_ms_per_hour * 18) / 10);
      EXPECT_LT(s.t_end, t0 + 2 * k_ms_per_hour);
    }
  }
}

// ---------------------------------------------------------------------------
// Execution.

TEST(ScenarioRun, StationaryScenarioMatchesStationaryStreamAndBatch) {
  // A scenario whose cohorts mirror the device-block registry of a
  // stationary request compiles to the same UE layout and RNG streams, so
  // the delivered sequence must be byte-identical to both the stationary
  // streaming runtime and the batch generator.
  const char* text = R"(
duration 2
start-hour 10
cohort phones
  count 25
cohort cars
  device car
  count 10
cohort tabs
  device tablet
  count 8
)";
  CompileOptions copts;
  copts.seed = 99;
  const CompiledScenario sc =
      compile(parse_scenario_string(text), lte_model(), copts);
  const auto scenario_events = run_plan(sc.plan, 4, 2, 7 * k_ms_per_minute);

  gen::GenerationRequest req;
  req.ue_counts = {25, 10, 8};
  req.start_hour = 10;
  req.duration_hours = 2.0;
  req.seed = 99;
  std::vector<ControlEvent> stationary;
  stream::CallbackSink sink(
      [&](const ControlEvent& e) { stationary.push_back(e); });
  stream::stream_generate(lte_model(), req, stream::StreamOptions{}, sink);
  ASSERT_FALSE(scenario_events.empty());
  EXPECT_EQ(scenario_events, stationary);

  const Trace batch = gen::generate_trace(lte_model(), req);
  ASSERT_EQ(scenario_events.size(), batch.num_events());
  const auto be = batch.events();
  EXPECT_TRUE(std::equal(scenario_events.begin(), scenario_events.end(),
                         be.begin()));
}

TEST(ScenarioRun, ChurnIsDeterministicAcrossShardsThreadsSlices) {
  const CompiledScenario sc =
      compile(parse_scenario_string(k_churny_spec), lte_model());
  const auto want = run_plan(sc.plan, 1, 1, 30 * k_ms_per_minute);
  ASSERT_GT(want.size(), 100u);
  for (const std::size_t shards : {std::size_t{2}, std::size_t{8}}) {
    for (const unsigned threads : {1u, 3u}) {
      for (const TimeMs slice :
           {7 * k_ms_per_minute, 25 * k_ms_per_minute}) {
        SCOPED_TRACE("shards=" + std::to_string(shards) +
                     " threads=" + std::to_string(threads) +
                     " slice=" + std::to_string(slice));
        EXPECT_EQ(run_plan(sc.plan, shards, threads, slice), want);
      }
    }
  }
}

TEST(ScenarioRun, StatsCountTheLifecycle) {
  const CompiledScenario sc =
      compile(parse_scenario_string(k_churny_spec), lte_model());
  stream::StreamOptions opts;
  opts.num_shards = 4;
  opts.num_threads = 2;
  stream::CountingSink sink;
  const stream::StreamStats stats =
      stream::stream_generate(sc.plan, opts, sink);
  EXPECT_EQ(stats.num_ues, 100u);
  EXPECT_EQ(stats.cohort_joins, 30u);
  EXPECT_EQ(stats.cohort_leaves, 70u);
  EXPECT_EQ(stats.migrations, 30u);
}

TEST(ScenarioRun, NoEventsOutsideLifecycleWindows) {
  const CompiledScenario sc =
      compile(parse_scenario_string(k_churny_spec), lte_model());
  std::map<UeId, std::pair<TimeMs, TimeMs>> window;
  for (const stream::UeSegment& s : sc.plan.segments) {
    auto [it, fresh] = window.try_emplace(s.ue, s.t_start, s.t_end);
    if (!fresh) {
      it->second.first = std::min(it->second.first, s.t_start);
      it->second.second = std::max(it->second.second, s.t_end);
    }
  }
  for (const ControlEvent& e :
       run_plan(sc.plan, 4, 2, 10 * k_ms_per_minute)) {
    const auto& [lo, hi] = window.at(e.ue_id);
    EXPECT_GE(e.t_ms, lo) << "ue " << e.ue_id;
    EXPECT_LT(e.t_ms, hi) << "ue " << e.ue_id;
  }
}

TEST(ScenarioRun, SaMigrationSilencesTau) {
  // The tabs cohort hands off to the SA model (no TAU states) at +1 h: no
  // tablet may emit a TAU event at or after the wave.
  const CompiledScenario sc =
      compile(parse_scenario_string(k_churny_spec), lte_model());
  const TimeMs wave = sc.plan.t_begin + k_ms_per_hour;
  for (const ControlEvent& e :
       run_plan(sc.plan, 4, 2, 10 * k_ms_per_minute)) {
    if (sc.plan.device_of[e.ue_id] == DeviceType::tablet &&
        e.type == EventType::tau) {
      EXPECT_LT(e.t_ms, wave);
    }
  }
}

// Records the phase notifications a PhaseListener sink receives.
class PhaseRecorder final : public stream::EventSink,
                            public stream::PhaseListener {
 public:
  void on_event(const ControlEvent&) override {}
  void on_phase(const stream::PhaseRow* phase) override {
    names.push_back(phase != nullptr ? phase->name : "<gap>");
  }
  std::vector<std::string> names;
};

TEST(ScenarioRun, PhaseBoundariesReachListenerSinksThroughFanout) {
  const CompiledScenario sc =
      compile(parse_scenario_string(k_churny_spec), lte_model());
  PhaseRecorder recorder;
  stream::CountingSink counter;
  stream::FanoutSink fanout({&recorder, &counter});  // forwards on_phase
  stream::StreamOptions opts;
  opts.num_shards = 3;
  stream::stream_generate(sc.plan, opts, fanout);
  // warmup [9h,10h), flash [10h,11h), then the uncovered tail [11h,12h).
  EXPECT_EQ(recorder.names,
            (std::vector<std::string>{"warmup", "flash", "<gap>"}));
}

// ---------------------------------------------------------------------------
// Checkpoint/resume under churn.

class ScenarioCheckpointDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cpg_scenario_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    std::filesystem::remove_all(dir_);
    fault::disarm_all();
  }
  std::filesystem::path dir_;
};

// Durable event store that survives the simulated process death (same
// pattern as the resilience suite: the store plays the role of a file).
class StoreSink final : public stream::EventSink,
                        public stream::CheckpointParticipant {
 public:
  explicit StoreSink(std::vector<ControlEvent>& store) : store_(store) {}
  void on_start(const stream::StreamHeader&) override { store_.clear(); }
  void on_event(const ControlEvent& e) override { store_.push_back(e); }
  void on_events(std::span<const ControlEvent> es) override {
    store_.insert(store_.end(), es.begin(), es.end());
  }
  std::string checkpoint_save() override {
    return std::to_string(store_.size());
  }
  void checkpoint_resume(const std::string& token,
                         const stream::StreamHeader&) override {
    store_.resize(std::stoull(token));
  }

 private:
  std::vector<ControlEvent>& store_;
};

TEST_F(ScenarioCheckpointDir, KillAndResumeMidFlashCrowdIsByteIdentical) {
  const CompiledScenario sc =
      compile(parse_scenario_string(k_churny_spec), lte_model());
  const auto want = run_plan(sc.plan, 4, 2, 5 * k_ms_per_minute);
  ASSERT_GT(want.size(), 100u);

  stream::StreamOptions opts;
  opts.num_shards = 4;
  opts.num_threads = 2;
  opts.slice_ms = 5 * k_ms_per_minute;  // 36 slices over the 3 h run
  opts.checkpoint.dir = dir_.string();
  opts.checkpoint.interval_slices = 3;

  // Kill inside the flash-crowd phase (slices 12..23), after the crowd has
  // joined and while per-slice activations are in flight.
  std::vector<ControlEvent> store;
  StoreSink sink(store);
  fault::FailpointSpec kill;
  kill.action = fault::Action::fatal;
  kill.skip = 15;
  kill.max_fires = 1;
  fault::arm("stream.deliver_slice", kill);
  EXPECT_THROW(stream::stream_generate(sc.plan, opts, sink),
               fault::InjectedFault);
  fault::disarm_all();
  ASSERT_LT(store.size(), want.size());

  stream::StreamOptions resume_opts = opts;
  resume_opts.resume = true;
  const stream::StreamStats stats =
      stream::stream_generate(sc.plan, resume_opts, sink);
  EXPECT_GT(stats.start_slice, 0u);
  EXPECT_EQ(store, want);
}

TEST_F(ScenarioCheckpointDir, ResumeUnderAnEditedSpecIsRejected) {
  const CompiledScenario sc =
      compile(parse_scenario_string(k_churny_spec), lte_model());
  stream::StreamOptions opts;
  opts.num_shards = 2;
  opts.slice_ms = 5 * k_ms_per_minute;
  opts.checkpoint.dir = dir_.string();
  opts.checkpoint.interval_slices = 2;

  std::vector<ControlEvent> store;
  StoreSink sink(store);
  fault::FailpointSpec kill;
  kill.action = fault::Action::fatal;
  kill.skip = 8;
  kill.max_fires = 1;
  fault::arm("stream.deliver_slice", kill);
  EXPECT_THROW(stream::stream_generate(sc.plan, opts, sink),
               fault::InjectedFault);
  fault::disarm_all();

  // The operator edits the spec (the flash crowd doubles) and tries to
  // resume from the old checkpoint: rejected, naming the scenario field.
  std::string edited = k_churny_spec;
  const auto pos = edited.find("count 30");
  ASSERT_NE(pos, std::string::npos);
  edited.replace(pos, 8, "count 60");
  const CompiledScenario other =
      compile(parse_scenario_string(edited), lte_model());
  // The edited plan differs in ue_counts too, but the scenario fingerprint
  // is checked first, so the diagnostic names the real cause.
  stream::StreamOptions resume_opts = opts;
  resume_opts.resume = true;
  try {
    stream::stream_generate(other.plan, resume_opts, sink);
    FAIL() << "expected scenario fingerprint mismatch";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("scenario"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Storms: spatially correlated joins
// ---------------------------------------------------------------------------

constexpr const char* k_storm_spec = R"(scenario stormy
start-hour 0
duration 2

cohort meters
  device tablet
  count 400
  join 0 1.5
  storm 0.5 0.6 0 0 1000 1000
)";

TEST(ScenarioSpec, ParsesStormAndFingerprintsIt) {
  const ScenarioSpec spec = parse_scenario_string(k_storm_spec);
  ASSERT_EQ(spec.cohorts.size(), 1u);
  const CohortSpec& c = spec.cohorts[0];
  ASSERT_TRUE(c.has_storm);
  EXPECT_DOUBLE_EQ(c.storm_from_h, 0.5);
  EXPECT_DOUBLE_EQ(c.storm_to_h, 0.6);
  EXPECT_DOUBLE_EQ(c.storm_x0, 0.0);
  EXPECT_DOUBLE_EQ(c.storm_x1, 1000.0);

  // The storm is part of the scenario identity (a resume under a changed
  // storm must be rejected), and dropping it changes the fingerprint.
  std::string without(k_storm_spec);
  without = without.substr(0, without.find("  storm"));
  EXPECT_NE(spec.fingerprint,
            parse_scenario_string(without).fingerprint);
  std::string wider(k_storm_spec);
  wider.replace(wider.find("0.5 0.6"), 7, "0.5 0.7");
  EXPECT_NE(spec.fingerprint, parse_scenario_string(wider).fingerprint);
}

TEST(ScenarioSpec, StormRejectsMalformedArguments) {
  const auto reject = [](const std::string& storm_line) {
    const std::string text = std::string("scenario s\nduration 2\n") +
                             "cohort c\n  count 5\n  " + storm_line + "\n";
    EXPECT_THROW(parse_scenario_string(text), ScenarioError) << storm_line;
  };
  reject("storm 0.5");                          // arity
  reject("storm 0.6 0.5 0 0 1000 1000");        // window inverted
  reject("storm 0.5 0.6 1000 0 1000 1000");     // empty rectangle (x)
  reject("storm 0.5 0.6 0 1000 1000 1000");     // empty rectangle (y)
  reject("storm 0.5 0.6 -5 0 1000 1000");       // negative coordinate
  reject("storm 0.5 9 0 0 1000 1000");          // past scenario end
}

TEST(ScenarioCompile, StormWithoutSpatialLayerIsRejected) {
  const ScenarioSpec spec = parse_scenario_string(k_storm_spec);
  try {
    compile(spec, lte_model());
    FAIL() << "expected ScenarioError";
  } catch (const ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find("spatial"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("meters"), std::string::npos)
        << e.what();
  }
}

TEST(ScenarioCompile, StormOverridesJoinsInsideTheRegionOnly) {
  const spatial::SpatialConfig cfg = spatial::load_spatial("grid:4x4x500");
  CompileOptions copts;
  copts.seed = 7;
  copts.spatial = &cfg;
  const ScenarioSpec spec = parse_scenario_string(k_storm_spec);
  const CompiledScenario cs = compile(spec, lte_model(), copts);

  const TimeMs storm_from = cs.plan.t_begin +
                            static_cast<TimeMs>(0.5 * k_ms_per_hour);
  const TimeMs storm_to = cs.plan.t_begin +
                          static_cast<TimeMs>(0.6 * k_ms_per_hour);
  std::size_t inside = 0, outside = 0;
  for (const stream::UeSegment& seg : cs.plan.segments) {
    const spatial::Vec2 home =
        spatial::home_position(cfg, copts.seed, seg.ue, DeviceType::tablet);
    const bool in_region =
        home.x >= 0.0 && home.x < 1000.0 && home.y >= 0.0 && home.y < 1000.0;
    if (in_region) {
      // Synchronized wakeup: the join lands inside the storm window.
      EXPECT_GE(seg.t_start, storm_from) << "ue " << seg.ue;
      EXPECT_LT(seg.t_start, storm_to) << "ue " << seg.ue;
      ++inside;
    } else {
      ++outside;
    }
  }
  // The 1 km x 1 km region is a quarter of the 2 km x 2 km grid; both
  // populations must be well represented for the test to mean anything.
  EXPECT_GT(inside, 40u);
  EXPECT_GT(outside, 40u);

  // Determinism: recompiling yields the identical join schedule.
  const CompiledScenario again = compile(spec, lte_model(), copts);
  ASSERT_EQ(again.plan.segments.size(), cs.plan.segments.size());
  for (std::size_t i = 0; i < cs.plan.segments.size(); ++i) {
    EXPECT_EQ(again.plan.segments[i].ue, cs.plan.segments[i].ue);
    EXPECT_EQ(again.plan.segments[i].t_start, cs.plan.segments[i].t_start);
  }
}

}  // namespace
}  // namespace cpg::scenario
