#include <gtest/gtest.h>

#include "test_util.h"
#include "validation/macro.h"
#include "validation/micro.h"
#include "validation/test_sweep.h"

namespace cpg::validation {
namespace {

TEST(BusyHour, FindsDominantHour) {
  Trace t;
  const UeId u = t.add_ue(DeviceType::phone);
  t.add_event(2 * k_ms_per_hour + 1, u, EventType::tau);
  for (int i = 0; i < 5; ++i) {
    t.add_event(19 * k_ms_per_hour + i, u, EventType::tau);
  }
  t.finalize();
  EXPECT_EQ(busy_hour(t), 19);
  Trace empty;
  EXPECT_THROW(busy_hour(empty), std::invalid_argument);
}

TEST(BreakdownDiff, SignedDeltasAndMaxAbs) {
  sm::StateBreakdown real, synth;
  real.counts[0] = {10, 0, 50, 40, 0, 0, 0, 0};   // phone
  synth.counts[0] = {0, 0, 60, 40, 0, 0, 0, 0};
  const auto diff = diff_breakdowns(real, synth);
  EXPECT_NEAR(diff.delta[0][0], -0.10, 1e-12);  // ATCH under-produced
  EXPECT_NEAR(diff.delta[0][2], 0.10, 1e-12);   // SRV_REQ over-produced
  EXPECT_NEAR(diff.max_abs(DeviceType::phone), 0.10, 1e-12);
  EXPECT_DOUBLE_EQ(diff.max_abs(DeviceType::tablet), 0.0);
}

TEST(EventsPerUe, CountsIncludeSilentUes) {
  Trace t;
  const UeId a = t.add_ue(DeviceType::phone);
  t.add_ue(DeviceType::phone);  // silent
  const UeId c = t.add_ue(DeviceType::tablet);
  t.add_event(1, a, EventType::srv_req);
  t.add_event(2, a, EventType::srv_req);
  t.add_event(3, c, EventType::srv_req);
  t.finalize();
  const auto phones = events_per_ue(t, DeviceType::phone, EventType::srv_req);
  ASSERT_EQ(phones.size(), 2u);
  EXPECT_DOUBLE_EQ(phones[0], 2.0);
  EXPECT_DOUBLE_EQ(phones[1], 0.0);
}

TEST(MaxYDistance, BoundaryBehaviour) {
  const double a[] = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(max_y_distance(a, a), 0.0);
  EXPECT_DOUBLE_EQ(max_y_distance(a, {}), 1.0);
  EXPECT_DOUBLE_EQ(max_y_distance({}, a), 1.0);
}

TEST(SplitByActivity, ThresholdAtTwoEvents) {
  const double counts[] = {0.0, 1.0, 2.0, 3.0, 10.0};
  const auto split = split_by_activity(counts);
  EXPECT_EQ(split.inactive.size(), 3u);  // 0, 1, 2
  EXPECT_EQ(split.active.size(), 2u);    // 3, 10
}

TEST(EcdfPoints, MonotoneAndEndsAtOne) {
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back((i * 31) % 997);
  const auto pts = ecdf_points(xs, 50);
  ASSERT_GE(pts.size(), 2u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].first, pts[i - 1].first);
    EXPECT_GE(pts[i].second, pts[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
  EXPECT_TRUE(ecdf_points({}, 10).empty());
}

TEST(SweepNames, CategoriesMatchPaperTables) {
  EXPECT_EQ(event_state_category_name(0), "ATCH");
  EXPECT_EQ(event_state_category_name(2), "SRV_REQ");
  EXPECT_EQ(event_state_category_name(6), "REG.");
  EXPECT_EQ(event_state_category_name(9), "IDLE");
  EXPECT_EQ(substate_category_name(0), "SRV_REQ_S-HO");
  EXPECT_EQ(substate_category_name(8), "TAU_S_I-S1_REL");
  EXPECT_EQ(to_string(GofVariant::poisson_ad), "Poisson (A2)");
}

TEST(SweepNames, SubstateEdgeMappingIsConsistent) {
  const auto& spec = sm::lte_two_level_spec();
  // Category 0 = SRV_REQ_S --HO-->; category 8 = TAU_S_IDLE --S1_REL-->.
  const auto& e0 = spec.sub_transitions()[substate_category_edge(0)];
  EXPECT_EQ(e0.from, SubState::srv_req_s);
  EXPECT_EQ(e0.event, EventType::ho);
  const auto& e8 = spec.sub_transitions()[substate_category_edge(8)];
  EXPECT_EQ(e8.from, SubState::tau_s_idle);
  EXPECT_EQ(e8.event, EventType::s1_conn_rel);
  // Every category maps to a distinct edge.
  std::set<std::size_t> edges;
  for (std::size_t c = 0; c < k_num_substate_categories; ++c) {
    edges.insert(substate_category_edge(c));
  }
  EXPECT_EQ(edges.size(), k_num_substate_categories);
}

TEST(Sweep, PoissonFailsOnGroundTruth) {
  // Core §4 result: the Poisson family cannot model per-UE traffic even with
  // clustering.
  const Trace t = testutil::small_ground_truth(250, 48.0, 31);
  SweepOptions opts;
  opts.with_clustering = true;
  opts.clustering.theta_n = 60;
  opts.min_samples = 100;  // low-power tiny units would dilute the signal
  const auto sweep = sweep_events_states(t, opts);
  const auto& cell =
      sweep.cells[static_cast<std::size_t>(GofVariant::poisson_ks)]
                 [index_of(DeviceType::phone)][2];  // SRV_REQ
  ASSERT_GT(cell.total, 0u);
  EXPECT_LT(cell.rate(), 0.25);
  // IDLE sojourn also fails.
  const auto& idle =
      sweep.cells[static_cast<std::size_t>(GofVariant::poisson_ks)]
                 [index_of(DeviceType::phone)][9];
  ASSERT_GT(idle.total, 0u);
  EXPECT_LT(idle.rate(), 0.25);
  // The tail-weighted Anderson-Darling test rejects even more strongly.
  const auto& ad =
      sweep.cells[static_cast<std::size_t>(GofVariant::poisson_ad)]
                 [index_of(DeviceType::phone)][2];
  ASSERT_GT(ad.total, 0u);
  EXPECT_LT(ad.rate(), 0.25);
}

TEST(Sweep, ClusteringChangesUnitCount) {
  const Trace t = testutil::small_ground_truth(250, 48.0, 31);
  SweepOptions with;
  with.with_clustering = true;
  with.clustering.theta_n = 30;
  SweepOptions without;
  without.with_clustering = false;
  const auto a = sweep_events_states(t, with);
  const auto b = sweep_events_states(t, without);
  const auto& cell_a = a.cells[0][index_of(DeviceType::phone)][2];
  const auto& cell_b = b.cells[0][index_of(DeviceType::phone)][2];
  EXPECT_GT(cell_a.total, cell_b.total);
  EXPECT_GT(cell_b.total, 0u);
}

TEST(Sweep, SubstateSweepCoversObservedTransitions) {
  const Trace t = testutil::small_ground_truth(250, 48.0, 31);
  SweepOptions opts;
  opts.with_clustering = true;
  opts.clustering.theta_n = 30;
  opts.min_samples = 10;
  const auto sweep = sweep_substates(t, opts);
  // HO self-loop (category 1) happens densely for connected cars.
  const auto& ho_loop =
      sweep.cells[0][index_of(DeviceType::connected_car)][1];
  EXPECT_GT(ho_loop.total, 0u);
  // The idle TAU release (category 8) exists for phones.
  const auto& rel = sweep.cells[0][index_of(DeviceType::phone)][8];
  EXPECT_GT(rel.total, 0u);
}

TEST(PassRate, RateComputation) {
  PassRate r;
  EXPECT_DOUBLE_EQ(r.rate(), 0.0);
  r.passed = 3;
  r.total = 12;
  EXPECT_DOUBLE_EQ(r.rate(), 0.25);
}

}  // namespace
}  // namespace cpg::validation
