#include <gtest/gtest.h>

#include "core/rng.h"
#include "stats/fit.h"
#include "stats/gof.h"

namespace cpg::stats {
namespace {

std::vector<double> draw(const Distribution& d, int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = d.sample(rng);
  return xs;
}

TEST(KolmogorovQ, KnownValuesAndMonotonicity) {
  EXPECT_NEAR(kolmogorov_q(1e-9), 1.0, 1e-9);
  // Q(1.224) ~ 0.1, Q(1.358) ~ 0.05 (standard K-S critical points).
  EXPECT_NEAR(kolmogorov_q(1.224), 0.10, 0.005);
  EXPECT_NEAR(kolmogorov_q(1.358), 0.05, 0.003);
  double prev = 1.0;
  for (double x = 0.1; x < 3.0; x += 0.1) {
    const double q = kolmogorov_q(x);
    EXPECT_LE(q, prev + 1e-12);
    prev = q;
  }
}

// Pins Q(x) to high-precision reference values across the small-x
// Jacobi-theta branch (x < 0.3), the alternating-series branch, and both
// sides of the switchover. The x=0.2 case is the one the alternating series
// cannot resolve: 1 - Q(0.2) ~ 5.1e-13 would vanish in cancellation.
TEST(KolmogorovQ, PinnedReferenceValues) {
  EXPECT_NEAR(1.0 - kolmogorov_q(0.2), 5.0504073387e-13, 1e-16);
  EXPECT_NEAR(kolmogorov_q(0.5), 0.9639452436648751, 1e-12);
  EXPECT_NEAR(kolmogorov_q(1.0), 0.2699996716773546, 1e-12);
  EXPECT_NEAR(kolmogorov_q(1.5), 0.0222179626165251, 1e-12);
  // The two evaluation branches agree where they meet.
  EXPECT_NEAR(kolmogorov_q(0.3 - 1e-9), kolmogorov_q(0.3 + 1e-9), 1e-9);
}

TEST(KsTest, AcceptsTrueDistribution) {
  const Exponential truth(1.0);
  int passed = 0;
  for (int rep = 0; rep < 40; ++rep) {
    const auto sample = draw(truth, 300, 100 + rep);
    if (ks_test(sample, truth).passes()) ++passed;
  }
  // At a 5% significance level ~95% of true-null samples pass.
  EXPECT_GE(passed, 33);
}

TEST(KsTest, RejectsWrongDistribution) {
  const LogNormal truth(0.0, 1.5);
  const Exponential wrong(1.0 / truth.mean());
  const auto sample = draw(truth, 2000, 7);
  const auto r = ks_test(sample, wrong);
  EXPECT_FALSE(r.passes());
  EXPECT_GT(r.statistic, 0.1);
}

TEST(KsTest, StatisticExactOnTinySample) {
  // Sample {1.0} against Exponential(1): F(1) = 0.632...;
  // D = max(F - 0, 1 - F) = 0.632.
  const double sample[] = {1.0};
  const Exponential e(1.0);
  const auto r = ks_test(sample, e);
  EXPECT_NEAR(r.statistic, 0.6321, 1e-3);
}

TEST(KsTest, ThrowsOnEmpty) {
  const Exponential e(1.0);
  EXPECT_THROW(ks_test({}, e), std::invalid_argument);
}

TEST(KsTwoSample, ZeroForIdenticalSamples) {
  const double a[] = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(ks_two_sample_statistic(a, a), 0.0);
}

TEST(KsTwoSample, OneForDisjointSamples) {
  const double a[] = {1.0, 2.0};
  const double b[] = {10.0, 20.0};
  EXPECT_DOUBLE_EQ(ks_two_sample_statistic(a, b), 1.0);
}

TEST(KsTwoSample, KnownHalfOverlap) {
  const double a[] = {1.0, 2.0, 3.0, 4.0};
  const double b[] = {3.0, 4.0, 5.0, 6.0};
  // After x=2: F_a = 0.5, F_b = 0.0 -> D = 0.5.
  EXPECT_DOUBLE_EQ(ks_two_sample_statistic(a, b), 0.5);
}

TEST(KsTwoSample, SymmetricAndScaleOfSampleSizesHandled) {
  Rng rng(9);
  std::vector<double> a(500), b(3000);
  for (auto& x : a) x = rng.exponential(1.0);
  for (auto& x : b) x = rng.exponential(1.0);
  const double d1 = ks_two_sample_statistic(a, b);
  const double d2 = ks_two_sample_statistic(b, a);
  EXPECT_DOUBLE_EQ(d1, d2);
  EXPECT_LT(d1, 0.08);  // same law -> small distance
}

TEST(AdExponential, AcceptsExponentialSamples) {
  const Exponential truth(2.0);
  int passed = 0;
  for (int rep = 0; rep < 40; ++rep) {
    const auto sample = draw(truth, 200, 500 + rep);
    if (ad_test_exponential(sample).passes()) ++passed;
  }
  EXPECT_GE(passed, 33);
}

TEST(AdExponential, RejectsHeavyTailedSamples) {
  const LogNormal truth(0.0, 1.8);
  const auto sample = draw(truth, 1000, 11);
  const auto r = ad_test_exponential(sample);
  EXPECT_FALSE(r.passes());
  EXPECT_GT(r.a2_modified, r.critical_5pct);
}

TEST(AdExponential, MoreSensitiveToTailsThanKs) {
  // A distribution matching exponential in the bulk but with a fat tail:
  // mixture of Exp(1) with 2% Pareto tail.
  Rng rng(13);
  std::vector<double> sample(1500);
  for (auto& x : sample) {
    x = rng.bernoulli(0.02) ? rng.pareto(5.0, 1.1) : rng.exponential(1.0);
  }
  const auto ad = ad_test_exponential(sample);
  EXPECT_FALSE(ad.passes());
}

TEST(AdGeneric, Case0AgainstSpecifiedDistribution) {
  const Exponential truth(1.0);
  const auto sample = draw(truth, 500, 17);
  const auto r = ad_test(sample, truth);
  EXPECT_TRUE(r.passes());
  const LogNormal wrong(2.0, 0.2);
  EXPECT_FALSE(ad_test(sample, wrong).passes());
}

TEST(AdTests, ThrowOnTooFewPoints) {
  const double one[] = {1.0};
  EXPECT_THROW(ad_test_exponential(one), std::invalid_argument);
  const Exponential e(1.0);
  EXPECT_THROW(ad_test(one, e), std::invalid_argument);
}

}  // namespace
}  // namespace cpg::stats
