#include <gtest/gtest.h>

#include "ran/ue_events.h"
#include "statemachine/replay.h"

namespace cpg::ran {
namespace {

TEST(Topology, DimensionsAndValidation) {
  CellTopology topo(10, 8, 500.0, 4);
  EXPECT_EQ(topo.num_cells(), 80);
  // ceil(10/4) x ceil(8/4) = 3 x 2.
  EXPECT_EQ(topo.num_tracking_areas(), 6);
  EXPECT_DOUBLE_EQ(topo.width_m(), 5000.0);
  EXPECT_DOUBLE_EQ(topo.height_m(), 4000.0);
  EXPECT_THROW(CellTopology(0, 8, 500.0, 1), std::invalid_argument);
  EXPECT_THROW(CellTopology(10, 8, -1.0, 1), std::invalid_argument);
  EXPECT_THROW(CellTopology(10, 8, 500.0, 11), std::invalid_argument);
}

TEST(Topology, CellLookup) {
  CellTopology topo(4, 4, 100.0, 2);
  EXPECT_EQ(topo.cell_at({50.0, 50.0}), 0);
  EXPECT_EQ(topo.cell_at({150.0, 50.0}), 1);
  EXPECT_EQ(topo.cell_at({50.0, 150.0}), 4);
  EXPECT_EQ(topo.cell_at({399.0, 399.0}), 15);
}

TEST(Topology, TorusWrap) {
  CellTopology topo(4, 4, 100.0, 2);
  EXPECT_EQ(topo.cell_at({450.0, 50.0}), topo.cell_at({50.0, 50.0}));
  EXPECT_EQ(topo.cell_at({-50.0, 50.0}), topo.cell_at({350.0, 50.0}));
  const Position w = topo.wrap({-10.0, 410.0});
  EXPECT_NEAR(w.x, 390.0, 1e-9);
  EXPECT_NEAR(w.y, 10.0, 1e-9);
}

TEST(Topology, TrackingAreasAreCellBlocks) {
  CellTopology topo(4, 4, 100.0, 2);
  // Cells 0,1,4,5 form TA 0; 2,3,6,7 form TA 1.
  EXPECT_EQ(topo.tracking_area_of(0), topo.tracking_area_of(5));
  EXPECT_EQ(topo.tracking_area_of(2), topo.tracking_area_of(7));
  EXPECT_NE(topo.tracking_area_of(0), topo.tracking_area_of(2));
  EXPECT_NE(topo.tracking_area_of(0), topo.tracking_area_of(8));
  EXPECT_THROW(topo.tracking_area_of(16), std::out_of_range);
}

TEST(Mobility, StationaryUeStaysPut) {
  CellTopology topo(10, 10, 500.0, 5);
  Rng rng(1);
  WaypointMobility m(topo, stationary_params(), rng);
  const Position p0 = m.advance_to(0);
  const Position p1 = m.advance_to(4 * k_ms_per_hour);
  EXPECT_DOUBLE_EQ(p0.x, p1.x);
  EXPECT_DOUBLE_EQ(p0.y, p1.y);
}

TEST(Mobility, MovingUeCoversDistanceWithinSpeedBound) {
  CellTopology topo(20, 20, 500.0, 5);
  Rng rng(2);
  MobilityParams params = vehicular_params();
  params.mean_pause_s = 0.001;  // essentially always moving
  WaypointMobility m(topo, params, rng);
  Position prev = m.advance_to(0);
  double total = 0.0;
  constexpr TimeMs dt = 1000;
  for (TimeMs t = dt; t <= 600 * 1000; t += dt) {
    const Position p = m.advance_to(t);
    // Per-tick displacement bounded by max speed (no torus jump within a
    // trip because trips are planned in unwrapped coordinates).
    const double dx = p.x - prev.x, dy = p.y - prev.y;
    double step = std::sqrt(dx * dx + dy * dy);
    // Allow the wrap discontinuity when crossing the border.
    if (step < topo.width_m() / 2) {
      EXPECT_LE(step, params.max_speed_mps * 1.001);
      total += step;
    }
    prev = p;
  }
  EXPECT_GT(total, 600.0 * params.min_speed_mps * 0.5);
}

TEST(Mobility, TimeMustNotRunBackwards) {
  CellTopology topo(10, 10, 500.0, 5);
  Rng rng(3);
  WaypointMobility m(topo, pedestrian_params(), rng);
  m.advance_to(10'000);
  // Earlier times are clamped to "now", not rewound.
  const Position p = m.advance_to(5'000);
  const Position q = m.advance_to(10'000);
  EXPECT_DOUBLE_EQ(p.x, q.x);
}

RanUeParams fast_params() {
  RanUeParams p;
  p.mobility = vehicular_params();
  p.mobility.mean_pause_s = 5.0;
  p.mean_idle_gap_s = 120.0;
  p.mean_session_s = 90.0;
  p.periodic_tau_s = 600.0;
  return p;
}

TEST(RanUe, EmitsEventsAndConforms) {
  CellTopology topo(16, 16, 400.0, 4);
  const Trace trace = simulate_ran_fleet(topo, fast_params(), 40,
                                         DeviceType::connected_car,
                                         4 * k_ms_per_hour, 11);
  ASSERT_GT(trace.num_events(), 1000u);
  // The headline property: mobility-derived traffic is protocol-legal.
  EXPECT_EQ(sm::count_violations(sm::lte_two_level_spec(), trace), 0u);
}

TEST(RanUe, VehicularHasMoreHoThanPedestrian) {
  CellTopology topo(16, 16, 400.0, 4);
  RanUeParams veh = fast_params();
  RanUeParams ped = fast_params();
  ped.mobility = pedestrian_params();
  const Trace fast = simulate_ran_fleet(topo, veh, 30, DeviceType::phone,
                                        2 * k_ms_per_hour, 21);
  const Trace slow = simulate_ran_fleet(topo, ped, 30, DeviceType::phone,
                                        2 * k_ms_per_hour, 21);
  const auto ho_count = [](const Trace& t) {
    std::uint64_t n = 0;
    for (const ControlEvent& e : t.events()) n += e.type == EventType::ho;
    return n;
  };
  EXPECT_GT(ho_count(fast), 4 * std::max<std::uint64_t>(ho_count(slow), 1));
}

TEST(RanUe, SmallerTrackingAreasMeanMoreTau) {
  CellTopology coarse(16, 16, 400.0, 8);
  CellTopology fine(16, 16, 400.0, 2);
  const auto tau_count = [](const Trace& t) {
    std::uint64_t n = 0;
    for (const ControlEvent& e : t.events()) n += e.type == EventType::tau;
    return n;
  };
  const Trace coarse_t = simulate_ran_fleet(coarse, fast_params(), 30,
                                            DeviceType::phone,
                                            2 * k_ms_per_hour, 31);
  const Trace fine_t = simulate_ran_fleet(fine, fast_params(), 30,
                                          DeviceType::phone,
                                          2 * k_ms_per_hour, 31);
  EXPECT_GT(tau_count(fine_t), tau_count(coarse_t));
}

TEST(RanUe, StationaryUeHasNoHo) {
  CellTopology topo(16, 16, 400.0, 4);
  RanUeParams p = fast_params();
  p.mobility = stationary_params();
  const Trace t = simulate_ran_fleet(topo, p, 20, DeviceType::tablet,
                                     2 * k_ms_per_hour, 41);
  for (const ControlEvent& e : t.events()) {
    EXPECT_NE(e.type, EventType::ho);
  }
  // Sessions and periodic TAUs still happen.
  EXPECT_GT(t.num_events(), 100u);
}

TEST(RanUe, DeterministicForSeed) {
  CellTopology topo(8, 8, 500.0, 4);
  const Trace a = simulate_ran_fleet(topo, fast_params(), 10,
                                     DeviceType::phone, k_ms_per_hour, 51);
  const Trace b = simulate_ran_fleet(topo, fast_params(), 10,
                                     DeviceType::phone, k_ms_per_hour, 51);
  ASSERT_EQ(a.num_events(), b.num_events());
  for (std::size_t i = 0; i < a.num_events(); ++i) {
    EXPECT_EQ(a.events()[i], b.events()[i]);
  }
}

TEST(RanUe, EventsStrictlyOrderedPerUe) {
  CellTopology topo(8, 8, 500.0, 4);
  const Trace t = simulate_ran_fleet(topo, fast_params(), 10,
                                     DeviceType::phone, k_ms_per_hour, 61);
  for (const auto& ue_events : t.group_by_ue()) {
    for (std::size_t i = 1; i < ue_events.size(); ++i) {
      EXPECT_GT(ue_events[i].t_ms, ue_events[i - 1].t_ms);
    }
  }
}

}  // namespace
}  // namespace cpg::ran
