#include <gtest/gtest.h>

#include <sstream>

#include "generator/traffic_generator.h"
#include "io/model_io.h"
#include "model/fit.h"
#include "model/nextg.h"
#include "statemachine/replay.h"
#include "test_util.h"

namespace cpg::io {
namespace {

const model::ModelSet& fitted() {
  static const model::ModelSet set = [] {
    model::FitOptions opts;
    opts.method = model::Method::ours;
    opts.clustering.theta_n = 30;
    return model::fit_model(testutil::small_ground_truth(150, 24.0, 71),
                            opts);
  }();
  return set;
}

model::ModelSet round_trip(const model::ModelSet& set) {
  std::stringstream buffer;
  save_model(set, buffer);
  return load_model(buffer);
}

TEST(ModelIo, PreservesStructure) {
  const auto loaded = round_trip(fitted());
  EXPECT_EQ(loaded.method, fitted().method);
  EXPECT_EQ(loaded.spec, fitted().spec);
  EXPECT_EQ(loaded.num_days_fitted, fitted().num_days_fitted);
  for (DeviceType d : k_all_device_types) {
    const auto& a = fitted().device(d);
    const auto& b = loaded.device(d);
    ASSERT_EQ(a.ue_traj.size(), b.ue_traj.size()) << to_string(d);
    for (std::size_t u = 0; u < a.ue_traj.size(); ++u) {
      EXPECT_EQ(a.ue_traj[u], b.ue_traj[u]);
    }
    for (int h = 0; h < 24; ++h) {
      ASSERT_EQ(a.by_hour[h].size(), b.by_hour[h].size());
    }
  }
}

TEST(ModelIo, PreservesLaws) {
  const auto loaded = round_trip(fitted());
  const auto& a =
      fitted().device(DeviceType::phone).pooled_all.top[index_of(
          TopState::connected)];
  const auto& b = loaded.device(DeviceType::phone)
                      .pooled_all.top[index_of(TopState::connected)];
  ASSERT_EQ(a.out.size(), b.out.size());
  for (std::size_t i = 0; i < a.out.size(); ++i) {
    EXPECT_EQ(a.out[i].edge, b.out[i].edge);
    EXPECT_DOUBLE_EQ(a.out[i].probability, b.out[i].probability);
    // Quantile-grid round trip: tight in the bulk, looser in the heavy
    // tail where 256 knots interpolate across wide gaps.
    for (double p : {0.1, 0.5}) {
      EXPECT_NEAR(b.out[i].sojourn->quantile(p),
                  a.out[i].sojourn->quantile(p),
                  0.10 * std::abs(a.out[i].sojourn->quantile(p)) + 0.05);
    }
    EXPECT_NEAR(b.out[i].sojourn->quantile(0.9),
                a.out[i].sojourn->quantile(0.9),
                0.25 * std::abs(a.out[i].sojourn->quantile(0.9)) + 0.05);
  }
}

TEST(ModelIo, PreservesFirstEventLaw) {
  const auto loaded = round_trip(fitted());
  const auto& a = fitted().device(DeviceType::phone).pooled_all.first_event;
  const auto& b = loaded.device(DeviceType::phone).pooled_all.first_event;
  ASSERT_TRUE(a.has_data());
  ASSERT_TRUE(b.has_data());
  EXPECT_DOUBLE_EQ(a.p_active, b.p_active);
  for (std::size_t e = 0; e < k_num_event_types; ++e) {
    EXPECT_DOUBLE_EQ(a.type_prob[e], b.type_prob[e]);
  }
}

TEST(ModelIo, LoadedModelGeneratesConformingTraffic) {
  const auto loaded = round_trip(fitted());
  gen::GenerationRequest req;
  req.ue_counts = {100, 40, 20};
  req.start_hour = 12;
  req.seed = 5;
  const Trace t = gen::generate_trace(loaded, req);
  ASSERT_FALSE(t.empty());
  EXPECT_EQ(sm::count_violations(sm::lte_two_level_spec(), t), 0u);
}

TEST(ModelIo, LoadedModelStatisticallyEquivalent) {
  const auto loaded = round_trip(fitted());
  gen::GenerationRequest req;
  req.ue_counts = {300, 100, 50};
  req.start_hour = 12;
  req.seed = 5;
  const Trace a = gen::generate_trace(fitted(), req);
  const Trace b = gen::generate_trace(loaded, req);
  // Not bit-identical (quantile grids), but volumes agree closely.
  const double ratio = static_cast<double>(a.num_events()) /
                       static_cast<double>(std::max<std::size_t>(
                           1, b.num_events()));
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

TEST(ModelIo, FiveGModelsRoundTrip) {
  const auto sa = model::derive_5g(fitted(), model::sa_defaults());
  const auto loaded = round_trip(sa);
  EXPECT_EQ(loaded.spec, &sm::fiveg_sa_spec());
  gen::GenerationRequest req;
  req.ue_counts = {100, 40, 20};
  req.start_hour = 12;
  req.seed = 6;
  const Trace t = gen::generate_trace(loaded, req);
  for (const ControlEvent& e : t.events()) {
    ASSERT_NE(e.type, EventType::tau);
  }
}

TEST(ModelIo, RejectsGarbage) {
  std::istringstream bad("not-a-model 1\n");
  EXPECT_THROW(load_model(bad), std::runtime_error);
  std::istringstream truncated("cptraffgen-model 1\nmethod 3\n");
  EXPECT_THROW(load_model(truncated), std::runtime_error);
  EXPECT_THROW(load_model(std::string("/nonexistent/path/model")),
               std::runtime_error);
}

TEST(ModelIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/cpg_model_test.model";
  save_model(fitted(), path);
  const auto loaded = load_model(path);
  EXPECT_EQ(loaded.method, fitted().method);
}

// ---------------------------------------------------------------------------
// Corruption sweep: a damaged model file must never crash, hang, or load
// silently wrong — load_model either succeeds or throws a diagnostic
// std::runtime_error.
// ---------------------------------------------------------------------------

const std::string& serialized() {
  static const std::string bytes = [] {
    std::stringstream buffer;
    save_model(fitted(), buffer);
    return buffer.str();
  }();
  return bytes;
}

TEST(ModelIoCorruption, TruncationAlwaysThrowsDiagnostic) {
  const std::string& good = serialized();
  ASSERT_GT(good.size(), 1000u);
  // Cut the file at a spread of points, including just past the header and
  // just short of the trailer.
  for (const std::size_t frac : {1u, 5u, 25u, 50u, 75u, 95u, 99u}) {
    const std::size_t cut = good.size() * frac / 100;
    std::istringstream is(good.substr(0, cut));
    try {
      load_model(is);
      FAIL() << "truncation at byte " << cut << " loaded successfully";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("load_model:"), std::string::npos)
          << "cut at " << cut << ": " << e.what();
    }
  }
}

TEST(ModelIoCorruption, DiagnosticNamesSectionAndOffset) {
  const std::string& good = serialized();
  std::istringstream is(good.substr(0, good.size() / 2));
  try {
    load_model(is);
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("section"), std::string::npos) << msg;
    EXPECT_NE(msg.find("byte"), std::string::npos) << msg;
  }
}

TEST(ModelIoCorruption, ByteFlipsNeverCrashOrHang) {
  const std::string& good = serialized();
  // Deterministic sweep: flip one byte at a time at evenly spaced
  // positions. Every mutation must either load or throw std::runtime_error
  // — nothing else (no aborts, no unbounded allocation, no other exception
  // types escaping).
  const std::size_t step = std::max<std::size_t>(1, good.size() / 64);
  int loaded_ok = 0;
  int rejected = 0;
  for (std::size_t pos = 0; pos < good.size(); pos += step) {
    std::string bad = good;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x15);
    std::istringstream is(bad);
    try {
      load_model(is);
      ++loaded_ok;  // benign flip (e.g. inside a mantissa)
    } catch (const std::runtime_error&) {
      ++rejected;
    }
  }
  // The sweep must exercise both outcomes' plumbing at least once overall;
  // rejection must dominate for structural damage.
  EXPECT_GT(rejected, 0);
  SUCCEED() << loaded_ok << " flips loaded, " << rejected << " rejected";
}

TEST(ModelIoCorruption, HugeCountsHitSanityCaps) {
  // Hand-build a file whose UE count claims 2^30 entries: the loader must
  // reject it by validation, not by attempting the allocation.
  std::string bad = serialized();
  const std::string marker = "device phone ";
  const std::size_t at = bad.find(marker);
  ASSERT_NE(at, std::string::npos);
  const std::size_t end = bad.find('\n', at);
  bad.replace(at, end - at, marker + "1073741824");
  std::istringstream is(bad);
  try {
    load_model(is);
    FAIL() << "oversized count accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("sanity cap"), std::string::npos)
        << e.what();
  }
}

TEST(ModelIoCorruption, OutOfRangeProbabilityRejected) {
  // The first-event record is "first <p_active> <type probs...>"; push
  // p_active far outside [0, 1] (beyond the round-trip clamping tolerance).
  std::string bad = serialized();
  const std::string marker = "\nfirst ";
  const std::size_t at = bad.find(marker);
  ASSERT_NE(at, std::string::npos);
  const std::size_t num_begin = at + marker.size();
  const std::size_t num_end = bad.find(' ', num_begin);
  ASSERT_NE(num_end, std::string::npos);
  bad.replace(num_begin, num_end - num_begin, "1.75");
  std::istringstream is(bad);
  EXPECT_THROW(load_model(is), std::runtime_error);
}

}  // namespace
}  // namespace cpg::io
