#include <gtest/gtest.h>

#include "core/rng.h"
#include "stats/fit.h"

namespace cpg::stats {
namespace {

std::vector<double> draw(const Distribution& d, int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = d.sample(rng);
  return xs;
}

TEST(FitExponential, RecoversRate) {
  const Exponential truth(0.25);
  const auto sample = draw(truth, 50000, 1);
  const Exponential fitted = fit_exponential(sample);
  EXPECT_NEAR(fitted.lambda(), 0.25, 0.01);
}

TEST(FitExponential, RejectsEmptyAndZeroMean) {
  EXPECT_THROW(fit_exponential({}), std::invalid_argument);
  const double zeros[] = {0.0, 0.0};
  EXPECT_THROW(fit_exponential(zeros), std::invalid_argument);
}

TEST(FitPareto, RecoversShapeAndScale) {
  const Pareto truth(2.0, 3.0);
  const auto sample = draw(truth, 50000, 2);
  const Pareto fitted = fit_pareto(sample);
  EXPECT_NEAR(fitted.x_m(), 2.0, 0.01);
  EXPECT_NEAR(fitted.alpha(), 3.0, 0.1);
}

TEST(FitPareto, DegenerateConstantSample) {
  const double vals[] = {5.0, 5.0, 5.0};
  const Pareto fitted = fit_pareto(vals);
  EXPECT_DOUBLE_EQ(fitted.x_m(), 5.0);
  EXPECT_GT(fitted.alpha(), 1e5);  // concentrates at x_m
}

TEST(FitPareto, RejectsNonPositive) {
  const double vals[] = {1.0, -2.0};
  EXPECT_THROW(fit_pareto(vals), std::invalid_argument);
}

struct WeibullCase {
  double k;
  double lambda;
};

class FitWeibull : public ::testing::TestWithParam<WeibullCase> {};

TEST_P(FitWeibull, RecoversParameters) {
  const auto [k, lambda] = GetParam();
  const Weibull truth(k, lambda);
  const auto sample = draw(truth, 40000, 3);
  const Weibull fitted = fit_weibull(sample);
  EXPECT_NEAR(fitted.shape(), k, 0.05 * k);
  EXPECT_NEAR(fitted.scale(), lambda, 0.05 * lambda);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FitWeibull,
    ::testing::Values(WeibullCase{0.5, 1.0}, WeibullCase{1.0, 2.0},
                      WeibullCase{1.8, 0.5}, WeibullCase{3.5, 10.0}));

TEST(FitLogNormal, RecoversParameters) {
  const LogNormal truth(1.5, 0.6);
  const auto sample = draw(truth, 50000, 4);
  const LogNormal fitted = fit_lognormal(sample);
  EXPECT_NEAR(fitted.mu(), 1.5, 0.02);
  EXPECT_NEAR(fitted.sigma(), 0.6, 0.02);
}

TEST(FitGeneric, ReturnsNullOnEmpty) {
  for (Family f : {Family::exponential, Family::pareto, Family::weibull,
                   Family::tcplib}) {
    EXPECT_EQ(fit(f, {}), nullptr) << to_string(f);
  }
}

TEST(FitGeneric, ReturnsNullOnNonPositiveForPositiveFamilies) {
  const double vals[] = {1.0, 0.0, 2.0};
  EXPECT_EQ(fit(Family::pareto, vals), nullptr);
  EXPECT_EQ(fit(Family::weibull, vals), nullptr);
  // Exponential only needs a positive mean.
  EXPECT_NE(fit(Family::exponential, vals), nullptr);
}

TEST(FitGeneric, FitsEveryFamilyOnHealthySample) {
  Rng rng(7);
  std::vector<double> sample(2000);
  for (auto& x : sample) x = rng.lognormal(1.0, 0.5);
  for (Family f : {Family::exponential, Family::pareto, Family::weibull,
                   Family::tcplib}) {
    const auto d = fit(f, sample);
    ASSERT_NE(d, nullptr) << to_string(f);
    EXPECT_GT(d->mean(), 0.0);
  }
}

TEST(FamilyNames, AreStable) {
  EXPECT_EQ(to_string(Family::exponential), "poisson");
  EXPECT_EQ(to_string(Family::pareto), "pareto");
  EXPECT_EQ(to_string(Family::weibull), "weibull");
  EXPECT_EQ(to_string(Family::tcplib), "tcplib");
}

}  // namespace
}  // namespace cpg::stats
