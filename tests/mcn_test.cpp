#include <gtest/gtest.h>

#include <array>
#include <stdexcept>

#include "mcn/simulator.h"
#include "mcn/stream_ingest.h"
#include "test_util.h"

namespace cpg::mcn {
namespace {

Trace one_event_trace(EventType e, TimeMs t = 1000) {
  Trace trace;
  const UeId u = trace.add_ue(DeviceType::phone);
  trace.add_event(t, u, e);
  trace.finalize();
  return trace;
}

double nominal_latency_us(EventType e, const SimulationConfig& config) {
  double total = 0.0;
  const auto proc = procedure_for(e);
  for (const ProcedureStep& step : proc) total += step.service_us;
  total += config.hop_delay_us * static_cast<double>(proc.size() - 1);
  return total;
}

TEST(Procedures, EveryEventHasAProcedureStartingAtMme) {
  for (EventType e : k_all_event_types) {
    const auto proc = procedure_for(e);
    ASSERT_FALSE(proc.empty()) << to_string(e);
    EXPECT_EQ(proc.front().nf, NetworkFunction::mme) << to_string(e);
    for (const ProcedureStep& s : proc) EXPECT_GT(s.service_us, 0.0);
  }
}

TEST(Procedures, AttachIsTheHeaviest) {
  auto total = [](EventType e) {
    double t = 0.0;
    for (const ProcedureStep& s : procedure_for(e)) t += s.service_us;
    return t;
  };
  for (EventType e : {EventType::srv_req, EventType::s1_conn_rel,
                      EventType::ho, EventType::tau, EventType::dtch}) {
    EXPECT_GT(total(EventType::atch), total(e)) << to_string(e);
  }
}

TEST(Procedures, DemandPerNfMatchesSteps) {
  const auto demand = demand_per_nf(EventType::srv_req);
  // SRV_REQ: MME 90 + 40, SGW 60.
  EXPECT_DOUBLE_EQ(demand[index_of(NetworkFunction::mme)], 130.0);
  EXPECT_DOUBLE_EQ(demand[index_of(NetworkFunction::sgw)], 60.0);
  EXPECT_DOUBLE_EQ(demand[index_of(NetworkFunction::hss)], 0.0);
}

TEST(Procedures, NfNames) {
  EXPECT_EQ(to_string(NetworkFunction::mme), "MME");
  EXPECT_EQ(to_string(NetworkFunction::pcrf), "PCRF");
}

TEST(Simulator, EmptyTrace) {
  Trace empty;
  const auto result = simulate(empty, {});
  EXPECT_EQ(result.procedures, 0u);
  EXPECT_EQ(result.messages, 0u);
}

TEST(Simulator, SingleProcedureLatencyIsExact) {
  SimulationConfig config;
  for (EventType e : k_all_event_types) {
    const auto result = simulate(one_event_trace(e), config);
    EXPECT_EQ(result.procedures, 1u) << to_string(e);
    EXPECT_EQ(result.messages, procedure_for(e).size()) << to_string(e);
    EXPECT_NEAR(result.latency_us.p50, nominal_latency_us(e, config), 1e-6)
        << to_string(e);
    EXPECT_NEAR(result.latency_by_event[index_of(e)].max,
                nominal_latency_us(e, config), 1e-6);
  }
}

TEST(Simulator, ContentionCreatesQueueing) {
  // Two simultaneous service requests at a 1-worker MME: the second waits
  // for the first's 90 us MME step.
  Trace trace;
  const UeId a = trace.add_ue(DeviceType::phone);
  const UeId b = trace.add_ue(DeviceType::phone);
  trace.add_event(1000, a, EventType::srv_req);
  trace.add_event(1000, b, EventType::srv_req);
  trace.finalize();
  const auto result = simulate(trace, {});
  const auto& mme = result.nf[index_of(NetworkFunction::mme)];
  EXPECT_GT(mme.max_wait_us, 0.0);
  EXPECT_GE(mme.max_queue_depth, 1u);
  // No negative waits, ever.
  EXPECT_GE(mme.mean_wait_us, 0.0);
}

TEST(Simulator, MoreWorkersRemoveQueueing) {
  Trace trace;
  for (int i = 0; i < 8; ++i) {
    const UeId u = trace.add_ue(DeviceType::phone);
    trace.add_event(1000, u, EventType::s1_conn_rel);
  }
  trace.finalize();
  SimulationConfig wide;
  wide.nfs[index_of(NetworkFunction::mme)].workers = 8;
  wide.nfs[index_of(NetworkFunction::sgw)].workers = 8;
  const auto result = simulate(trace, wide);
  EXPECT_DOUBLE_EQ(result.nf[index_of(NetworkFunction::mme)].max_wait_us,
                   0.0);
}

TEST(Simulator, ServiceScaleScalesBusyTime) {
  const Trace trace = one_event_trace(EventType::tau);
  SimulationConfig slow;
  for (auto& nf : slow.nfs) nf.service_scale = 2.0;
  const auto fast_result = simulate(trace, {});
  const auto slow_result = simulate(trace, slow);
  for (std::size_t n = 0; n < k_num_nfs; ++n) {
    EXPECT_DOUBLE_EQ(slow_result.nf[n].busy_us,
                     2.0 * fast_result.nf[n].busy_us);
  }
}

TEST(Simulator, UtilizationBoundedByOne) {
  const Trace trace = testutil::small_ground_truth(80, 3.0, 55);
  SimulationConfig config;
  for (auto& nf : config.nfs) nf.service_scale = 500.0;  // heavy overload
  const auto result = simulate(trace, config);
  for (std::size_t n = 0; n < k_num_nfs; ++n) {
    EXPECT_LE(result.nf[n].utilization, 1.0 + 1e-9);
    EXPECT_GE(result.nf[n].utilization, 0.0);
    EXPECT_GE(result.nf[n].mean_wait_us, 0.0);
  }
  EXPECT_EQ(result.procedures, trace.num_events());
}

TEST(Simulator, MessageConservation) {
  const Trace trace = testutil::small_ground_truth(60, 2.0, 56);
  const auto result = simulate(trace, {});
  std::uint64_t expected = 0;
  for (const ControlEvent& e : trace.events()) {
    expected += procedure_for(e.type).size();
  }
  EXPECT_EQ(result.messages, expected);
  EXPECT_EQ(result.procedures, trace.num_events());
}

TEST(Simulator, OfferedLoadMatchesHandDerivation) {
  // 10 TAU events over 10 s: MME demand 130 us + HSS 60 + SGW 40 per event.
  Trace trace;
  const UeId u = trace.add_ue(DeviceType::phone);
  for (int i = 0; i < 10; ++i) {
    trace.add_event(i * 1000, u, EventType::tau);
  }
  trace.finalize();
  const auto load = offered_load(trace, {});
  const double span_us = (9'000 + 1) * 1000.0;
  EXPECT_NEAR(load[index_of(NetworkFunction::mme)], 10 * 130.0 / span_us,
              1e-12);
  EXPECT_NEAR(load[index_of(NetworkFunction::hss)], 10 * 60.0 / span_us,
              1e-12);
}

TEST(Simulator, DeterministicResults) {
  const Trace trace = testutil::small_ground_truth(60, 2.0, 57);
  const auto a = simulate(trace, {});
  const auto b = simulate(trace, {});
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_DOUBLE_EQ(a.latency_us.p99, b.latency_us.p99);
  EXPECT_DOUBLE_EQ(a.nf[0].busy_us, b.nf[0].busy_us);
}

TEST(StreamingEpcScale, ServiceTimeScaleAppliesToNewServices) {
  // The scenario engine's core-degradation hook. Retuning before any work
  // scales every service exactly; retuning mid-stream affects only
  // services that start afterwards, so the first step of the already
  // in-flight procedure (started at ingest time) keeps its 1x duration and
  // the total lands strictly between the 1x and 3x runs.
  auto busy_of = [](bool pre_set, bool mid_set) {
    StreamingEpc epc({});
    if (pre_set) epc.set_service_time_scale(3.0);
    epc.ingest({1'000, 0, EventType::tau});
    if (mid_set) epc.set_service_time_scale(3.0);
    epc.ingest({10 * k_ms_per_minute, 0, EventType::tau});
    const SimulationResult r = epc.finish();
    std::array<double, k_num_nfs> busy{};
    for (std::size_t n = 0; n < k_num_nfs; ++n) busy[n] = r.nf[n].busy_us;
    return busy;
  };
  const auto base = busy_of(false, false);
  const auto degraded = busy_of(true, false);
  const auto mixed = busy_of(false, true);
  double base_sum = 0.0, mixed_sum = 0.0;
  for (std::size_t n = 0; n < k_num_nfs; ++n) {
    EXPECT_DOUBLE_EQ(degraded[n], 3.0 * base[n]) << "nf " << n;
    base_sum += base[n];
    mixed_sum += mixed[n];
  }
  ASSERT_GT(base_sum, 0.0);
  EXPECT_GT(mixed_sum, base_sum);
  EXPECT_LT(mixed_sum, 3.0 * base_sum);
}

TEST(StreamingEpcScale, DegradationRaisesLatencyUnderContention) {
  // Same burst, degraded core: every latency statistic moves up.
  Trace trace;
  for (int i = 0; i < 16; ++i) {
    const UeId u = trace.add_ue(DeviceType::phone);
    trace.add_event(1'000, u, EventType::srv_req);
  }
  trace.finalize();
  auto run = [&](double scale) {
    StreamingEpc epc({});
    epc.set_service_time_scale(scale);
    for (const ControlEvent& e : trace.events()) epc.ingest(e);
    return epc.finish();
  };
  const auto nominal = run(1.0);
  const auto degraded = run(4.0);
  EXPECT_GT(degraded.latency_us.p50, nominal.latency_us.p50);
  EXPECT_GT(degraded.latency_us.max, nominal.latency_us.max);
  EXPECT_GT(degraded.nf[index_of(NetworkFunction::mme)].max_wait_us,
            nominal.nf[index_of(NetworkFunction::mme)].max_wait_us);
}

TEST(StreamingEpcScale, InvalidScaleThrows) {
  StreamingEpc epc({});
  EXPECT_THROW(epc.set_service_time_scale(0.0), std::invalid_argument);
  EXPECT_THROW(epc.set_service_time_scale(-2.0), std::invalid_argument);
  EXPECT_THROW(epc.set_service_time_scale(1.0 / 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace cpg::mcn
