#include <gtest/gtest.h>

#include "clustering/adaptive.h"
#include "clustering/features.h"
#include "statemachine/spec.h"

namespace cpg::clustering {
namespace {

UeHourFeatures feat(double a, double b, double c, double d) {
  UeHourFeatures f;
  f.f = {a, b, c, d};
  return f;
}

TEST(AdaptiveCluster, EmptyInput) {
  const auto c = adaptive_cluster({}, {});
  EXPECT_EQ(c.num_clusters, 0u);
  EXPECT_TRUE(c.assignment.empty());
}

TEST(AdaptiveCluster, SimilarUesFormOneCluster) {
  std::vector<UeHourFeatures> fs;
  for (int i = 0; i < 50; ++i) {
    fs.push_back(feat(1.0 + 0.01 * i, 2.0, 0.5, 0.5));
  }
  ClusteringParams params;
  params.theta_f = 5.0;
  params.theta_n = 10;  // small enough that similarity must decide
  const auto c = adaptive_cluster(fs, params);
  EXPECT_EQ(c.num_clusters, 1u);
}

TEST(AdaptiveCluster, SmallPopulationStopsSplitting) {
  std::vector<UeHourFeatures> fs;
  for (int i = 0; i < 20; ++i) {
    fs.push_back(feat(i * 100.0, 0.0, 0.0, 0.0));  // wildly dissimilar
  }
  ClusteringParams params;
  params.theta_f = 5.0;
  params.theta_n = 50;  // below threshold -> never split
  const auto c = adaptive_cluster(fs, params);
  EXPECT_EQ(c.num_clusters, 1u);
}

TEST(AdaptiveCluster, DissimilarGroupsSeparate) {
  std::vector<UeHourFeatures> fs;
  for (int i = 0; i < 30; ++i) fs.push_back(feat(0.0, 0.0, 0.0, 0.0));
  for (int i = 0; i < 30; ++i) fs.push_back(feat(100.0, 100.0, 0.0, 0.0));
  ClusteringParams params;
  params.theta_f = 5.0;
  params.theta_n = 5;
  const auto c = adaptive_cluster(fs, params);
  EXPECT_GE(c.num_clusters, 2u);
  // All UEs of the same group share a cluster.
  for (int i = 1; i < 30; ++i) {
    EXPECT_EQ(c.assignment[i], c.assignment[0]);
    EXPECT_EQ(c.assignment[30 + i], c.assignment[30]);
  }
  EXPECT_NE(c.assignment[0], c.assignment[30]);
}

TEST(AdaptiveCluster, QuadrantsSplitOnTwoWidestFeatures) {
  // Four groups in the corners of the (f0, f1) plane; f2/f3 constant.
  std::vector<UeHourFeatures> fs;
  for (int i = 0; i < 25; ++i) {
    fs.push_back(feat(0.0, 0.0, 1.0, 1.0));
    fs.push_back(feat(50.0, 0.0, 1.0, 1.0));
    fs.push_back(feat(0.0, 50.0, 1.0, 1.0));
    fs.push_back(feat(50.0, 50.0, 1.0, 1.0));
  }
  ClusteringParams params;
  params.theta_f = 5.0;
  params.theta_n = 2;
  const auto c = adaptive_cluster(fs, params);
  EXPECT_EQ(c.num_clusters, 4u);
}

TEST(AdaptiveCluster, AssignmentIdsAreDense) {
  std::vector<UeHourFeatures> fs;
  for (int i = 0; i < 200; ++i) {
    fs.push_back(feat(i % 13 * 10.0, i % 7 * 12.0, i % 5 * 8.0, 0.0));
  }
  ClusteringParams params;
  params.theta_f = 5.0;
  params.theta_n = 10;
  const auto c = adaptive_cluster(fs, params);
  ASSERT_GT(c.num_clusters, 0u);
  std::vector<bool> seen(c.num_clusters, false);
  for (auto a : c.assignment) {
    ASSERT_LT(a, c.num_clusters);
    seen[a] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
  // members() inverts assignment.
  const auto members = c.members();
  std::size_t total = 0;
  for (const auto& m : members) total += m.size();
  EXPECT_EQ(total, fs.size());
}

TEST(AdaptiveCluster, Deterministic) {
  std::vector<UeHourFeatures> fs;
  for (int i = 0; i < 500; ++i) {
    fs.push_back(feat((i * 37) % 101, (i * 13) % 89, (i * 7) % 53, 0.0));
  }
  ClusteringParams params;
  params.theta_f = 5.0;
  params.theta_n = 20;
  const auto a = adaptive_cluster(fs, params);
  const auto b = adaptive_cluster(fs, params);
  EXPECT_EQ(a.num_clusters, b.num_clusters);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(Features, CountsAndSojournStdPerHour) {
  // UE with 2 SRV_REQ in hour 0 (one day): counts are per-day averages.
  std::vector<std::vector<ControlEvent>> groups(1);
  auto& ev = groups[0];
  ev.push_back({10'000, 0, EventType::srv_req});
  ev.push_back({40'000, 0, EventType::s1_conn_rel});   // 30 s CONNECTED
  ev.push_back({100'000, 0, EventType::srv_req});      // 60 s IDLE
  ev.push_back({190'000, 0, EventType::s1_conn_rel});  // 90 s CONNECTED

  const auto features = extract_features(sm::lte_two_level_spec(), groups, 1);
  ASSERT_EQ(features.size(), 1u);
  const auto& h0 = features[0][0];
  EXPECT_DOUBLE_EQ(h0.f[0], 2.0);  // SRV_REQ count
  EXPECT_DOUBLE_EQ(h0.f[1], 2.0);  // S1_CONN_REL count
  EXPECT_DOUBLE_EQ(h0.f[2], 30.0);  // std of {30, 90}
  EXPECT_DOUBLE_EQ(h0.f[3], 0.0);   // single idle sojourn -> std 0
  // Other hours are empty.
  EXPECT_DOUBLE_EQ(features[0][5].f[0], 0.0);
}

TEST(Features, PerDayAveraging) {
  std::vector<std::vector<ControlEvent>> groups(1);
  auto& ev = groups[0];
  // 2 SRV_REQ at hour 3 on day 0 and 4 on day 1 -> average 3 per day.
  for (int k = 0; k < 2; ++k) {
    ev.push_back({3 * k_ms_per_hour + k * 1000, 0, EventType::srv_req});
  }
  for (int k = 0; k < 4; ++k) {
    ev.push_back(
        {k_ms_per_day + 3 * k_ms_per_hour + k * 1000, 0, EventType::srv_req});
  }
  const auto features = extract_features(sm::lte_two_level_spec(), groups, 2);
  EXPECT_DOUBLE_EQ(features[0][3].f[0], 3.0);
}

}  // namespace
}  // namespace cpg::clustering
