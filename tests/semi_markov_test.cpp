#include <gtest/gtest.h>

#include "model/semi_markov.h"

namespace cpg::model {
namespace {

std::shared_ptr<const stats::Distribution> unit_exp() {
  return std::make_shared<stats::Exponential>(1.0);
}

DeviceModel tiny_device_model() {
  DeviceModel dev;
  dev.ue_traj.push_back({});  // one modeled UE, cluster 0 everywhere

  HourClusterModel cluster;
  cluster.top[index_of(TopState::connected)].out.push_back(
      {1, 1.0, unit_exp()});
  dev.by_hour[10].push_back(cluster);

  HourClusterModel hour_pool;
  hour_pool.top[index_of(TopState::idle)].out.push_back(
      {3, 1.0, unit_exp()});
  dev.pooled_hour[10] = hour_pool;

  dev.pooled_all.top[index_of(TopState::deregistered)].out.push_back(
      {0, 1.0, unit_exp()});
  dev.pooled_all.first_event.type_prob[index_of(EventType::srv_req)] = 1.0;
  const double off[] = {1.0, 2.0};
  dev.pooled_all.first_event.offset_s =
      std::make_shared<stats::Empirical>(off);
  dev.pooled_all.first_event.p_active = 0.5;
  return dev;
}

TEST(ResolveLaws, ExactClusterHit) {
  const DeviceModel dev = tiny_device_model();
  const StateLaw* law = resolve_top_law(dev, 10, 0, TopState::connected);
  ASSERT_NE(law, nullptr);
  EXPECT_EQ(law->out[0].edge, 1);
}

TEST(ResolveLaws, FallsBackToHourPoolThenGlobal) {
  const DeviceModel dev = tiny_device_model();
  // IDLE has no cluster law at hour 10 -> hour pool.
  const StateLaw* idle = resolve_top_law(dev, 10, 0, TopState::idle);
  ASSERT_NE(idle, nullptr);
  EXPECT_EQ(idle->out[0].edge, 3);
  // DEREGISTERED only exists in the global pool.
  const StateLaw* dereg =
      resolve_top_law(dev, 10, 0, TopState::deregistered);
  ASSERT_NE(dereg, nullptr);
  EXPECT_EQ(dereg->out[0].edge, 0);
  // Hours without any data fall through to the global pool too.
  EXPECT_NE(resolve_top_law(dev, 3, 0, TopState::deregistered), nullptr);
  // And states with no data anywhere resolve to nullptr.
  EXPECT_EQ(resolve_sub_law(dev, 3, 0, SubState::ho_s), nullptr);
}

TEST(ResolveLaws, OutOfRangeClusterUsesPools) {
  const DeviceModel dev = tiny_device_model();
  const StateLaw* law = resolve_top_law(dev, 10, 77, TopState::idle);
  ASSERT_NE(law, nullptr);
  EXPECT_EQ(law->out[0].edge, 3);
}

TEST(ResolveFirstEvent, ClusterSilenceIsRespected) {
  DeviceModel dev = tiny_device_model();
  // The cluster at hour 10 exists but has no first-event law: the UE is
  // silent that hour (NO fallback), per DESIGN.md.
  EXPECT_EQ(resolve_first_event(dev, 10, 0), nullptr);
  // At an hour with no cluster at all, the pools answer.
  const FirstEventLaw* fe = resolve_first_event(dev, 3, 0);
  ASSERT_NE(fe, nullptr);
  EXPECT_DOUBLE_EQ(fe->p_active, 0.5);
}

TEST(ResolveOverlay, FallbackChain) {
  DeviceModel dev = tiny_device_model();
  dev.pooled_all.overlay[index_of(EventType::ho)] = unit_exp();
  EXPECT_NE(resolve_overlay(dev, 10, 0, EventType::ho), nullptr);
  EXPECT_EQ(resolve_overlay(dev, 10, 0, EventType::tau), nullptr);
}

TEST(SampleEdge, NullForEmptyLaw) {
  StateLaw empty;
  Rng rng(1);
  EXPECT_EQ(sample_edge(empty, rng), nullptr);
}

TEST(SampleEdge, FullMassAlwaysPicks) {
  StateLaw law;
  law.out.push_back({0, 0.4, unit_exp()});
  law.out.push_back({1, 0.6, unit_exp()});
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NE(sample_edge(law, rng), nullptr);
  }
}

TEST(MethodNames, Stable) {
  EXPECT_EQ(to_string(Method::base), "Base");
  EXPECT_EQ(to_string(Method::b1), "B1");
  EXPECT_EQ(to_string(Method::b2), "B2");
  EXPECT_EQ(to_string(Method::ours), "Ours");
}

}  // namespace
}  // namespace cpg::model
