// Parameterized property sweep over the generator: for every (method,
// population scale, seed) combination, the synthesized trace must satisfy
// the design goals of paper §3.2 — owner labeling, time-window containment,
// canonical ordering, and (for two-level methods) 3GPP conformance.
#include <gtest/gtest.h>

#include <tuple>

#include "generator/traffic_generator.h"
#include "model/fit.h"
#include "statemachine/replay.h"
#include "test_util.h"

namespace cpg::gen {
namespace {

using Param = std::tuple<model::Method, std::size_t /*ues*/,
                         std::uint64_t /*seed*/>;

class GeneratorProperties : public ::testing::TestWithParam<Param> {
 protected:
  static const model::ModelSet& model_for(model::Method m) {
    static std::array<model::ModelSet, 4> sets = [] {
      const Trace fit_trace = testutil::small_ground_truth(200, 48.0, 91);
      std::array<model::ModelSet, 4> out;
      for (int i = 0; i < 4; ++i) {
        model::FitOptions opts;
        opts.method = static_cast<model::Method>(i);
        opts.clustering.theta_n = 40;
        out[i] = model::fit_model(fit_trace, opts);
      }
      return out;
    }();
    return sets[static_cast<int>(m)];
  }

  static Trace synthesize(const Param& param) {
    const auto& [method, ues, seed] = param;
    GenerationRequest req;
    req.ue_counts = {ues * 6 / 10, ues * 25 / 100, ues * 15 / 100};
    req.start_hour = 18;
    req.duration_hours = 1.0;
    req.seed = seed;
    req.num_threads = 2;
    return generate_trace(model_for(method), req);
  }
};

TEST_P(GeneratorProperties, EventsStayInWindowAndCanonicallyOrdered) {
  const Trace t = synthesize(GetParam());
  ASSERT_FALSE(t.empty());
  TimeMs prev = -1;
  for (const ControlEvent& e : t.events()) {
    EXPECT_GE(e.t_ms, 18 * k_ms_per_hour);
    EXPECT_LT(e.t_ms, 19 * k_ms_per_hour);
    EXPECT_GE(e.t_ms, prev);
    prev = e.t_ms;
  }
}

TEST_P(GeneratorProperties, EveryEventHasARegisteredOwner) {
  const Trace t = synthesize(GetParam());
  for (const ControlEvent& e : t.events()) {
    ASSERT_LT(e.ue_id, t.num_ues());
  }
}

TEST_P(GeneratorProperties, PerUeEventStreamsAreStrictlyOrdered) {
  const Trace t = synthesize(GetParam());
  for (const auto& ue_events : t.group_by_ue()) {
    for (std::size_t i = 1; i < ue_events.size(); ++i) {
      EXPECT_GT(ue_events[i].t_ms, ue_events[i - 1].t_ms);
    }
  }
}

TEST_P(GeneratorProperties, TwoLevelMethodsConform) {
  const auto method = std::get<0>(GetParam());
  if (model::uses_overlay_ho_tau(method)) {
    GTEST_SKIP() << "EMM-ECM overlay methods violate by design";
  }
  const Trace t = synthesize(GetParam());
  EXPECT_EQ(sm::count_violations(sm::lte_two_level_spec(), t), 0u);
}

TEST_P(GeneratorProperties, DeterministicForFixedSeed) {
  const Trace a = synthesize(GetParam());
  const Trace b = synthesize(GetParam());
  ASSERT_EQ(a.num_events(), b.num_events());
  for (std::size_t i = 0; i < a.num_events(); ++i) {
    ASSERT_EQ(a.events()[i], b.events()[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeneratorProperties,
    ::testing::Combine(
        ::testing::Values(model::Method::base, model::Method::b1,
                          model::Method::b2, model::Method::ours),
        ::testing::Values(std::size_t{60}, std::size_t{400}),
        ::testing::Values(std::uint64_t{1}, std::uint64_t{9177})),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_" +
             std::to_string(std::get<1>(info.param)) + "ues_seed" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace cpg::gen
