// Tests for the distributed runtime (src/dist/): wire codec round-trips,
// transport framing and shutdown, rank plan slicing, the coordinator merge
// determinism contract (merged N-rank stream == single-process stream, byte
// for byte, for any rank count and worker configuration), distributed
// checkpoint commit + kill/resume, failure surfacing (rank death, torn
// streams, hello mismatches) and cross-rank obs aggregation.
#include <gtest/gtest.h>

#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "dist/coordinator.h"
#include "dist/transport.h"
#include "dist/wire.h"
#include "dist/worker.h"
#include "generator/traffic_generator.h"
#include "model/fit.h"
#include "obs/metrics.h"
#include "scenario/scenario.h"
#include "scenario/spec.h"
#include "spatial/config.h"
#include "stream/stream_generator.h"
#include "test_util.h"

namespace cpg::dist {
namespace {

const model::ModelSet& ours_model() {
  static const model::ModelSet set = [] {
    model::FitOptions opts;
    opts.method = model::Method::ours;
    opts.clustering.theta_n = 30;
    return model::fit_model(testutil::small_ground_truth(200, 48.0, 11),
                            opts);
  }();
  return set;
}

gen::GenerationRequest small_request() {
  gen::GenerationRequest req;
  req.ue_counts = {40, 16, 8};
  req.start_hour = 10;
  req.duration_hours = 2.0;
  req.seed = 99;
  req.num_threads = 1;
  return req;
}

const stream::PopulationPlan& stationary() {
  static const stream::PopulationPlan plan =
      stream::stationary_plan(ours_model(), small_request());
  return plan;
}

constexpr const char* k_scn_spec = R"(scenario dist-mix
start-hour 9
duration 2

phase warmup 0 1
phase rush 1 2
  accel 50

cohort base
  device phone
  count 24
  join 0
  leave 1.6 1.9
cohort crowd
  device phone
  count 12
  join 0.5 0.7
cohort cars
  device car
  count 8
  migrate 1 nsa
)";

const scenario::CompiledScenario& churny() {
  static const scenario::CompiledScenario sc = scenario::compile(
      scenario::parse_scenario_string(k_scn_spec), ours_model());
  return sc;
}

constexpr TimeMs k_slice = 15 * k_ms_per_minute;

std::vector<ControlEvent> run_single(const stream::PopulationPlan& plan) {
  stream::StreamOptions opts;
  opts.num_shards = 2;
  opts.num_threads = 1;
  opts.slice_ms = k_slice;
  std::vector<ControlEvent> store;
  stream::CallbackSink sink(
      [&](const ControlEvent& e) { store.push_back(e); });
  stream::stream_generate(plan, opts, sink);
  return store;
}

// A transport decorator that injects a deterministic rank death: after
// `limit` successful sends every further send (including the worker's
// best-effort error frame) fails — exactly what a SIGKILLed worker process
// looks like from the coordinator (EOF mid-stream).
class DyingTransport final : public RankTransport {
 public:
  DyingTransport(RankTransport& inner, std::size_t limit)
      : inner_(inner), remaining_(limit) {}

  void send(FrameType type, std::string_view payload) override {
    if (remaining_ == 0) {
      inner_.abort();
      throw std::runtime_error("dist test: injected rank death");
    }
    --remaining_;
    inner_.send(type, payload);
  }
  std::optional<Frame> recv() override { return inner_.recv(); }
  void abort() override { inner_.abort(); }

 private:
  RankTransport& inner_;
  std::size_t remaining_;
};

// A transport decorator that injects a wedge: after `limit` successful
// sends every further send (the worker's events *and* its heartbeats — a
// truly stuck process sends nothing) blocks silently until abort(). From
// the coordinator the rank looks alive-but-silent, which is exactly what
// the heartbeat deadline exists to catch.
class SilentTransport final : public RankTransport {
 public:
  SilentTransport(RankTransport& inner, std::size_t limit)
      : inner_(inner), remaining_(limit) {}

  void send(FrameType type, std::string_view payload) override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (remaining_ == 0) {
        cv_.wait(lock, [this] { return aborted_; });
        throw std::runtime_error("dist test: transport aborted while hung");
      }
      --remaining_;
    }
    inner_.send(type, payload);
  }
  std::optional<Frame> recv() override { return inner_.recv(); }
  void abort() override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      aborted_ = true;
    }
    cv_.notify_all();
    inner_.abort();
  }

 private:
  RankTransport& inner_;
  std::size_t remaining_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool aborted_ = false;
};

// RankControl over in-process worker threads (the tests' analogue of the
// fork/exec launcher's ProcessRankControl).
class LambdaRankControl final : public RankControl {
 public:
  std::function<void(unsigned)> kill;
  std::function<RankTransport*(unsigned, const std::string&)> resp;

  void kill_rank(unsigned rank) override { kill(rank); }
  RankTransport* respawn(unsigned rank,
                         const std::string& resume_dir) override {
    return resp(rank, resume_dir);
  }
};

struct DistResult {
  std::vector<ControlEvent> events;
  // One cell id per event when the run had a spatial layer, empty otherwise.
  std::vector<std::uint32_t> cells;
  DistStats stats;
};

// Capture sink for the coordinator: records events, and — when the merged
// stream carries the spatial cell column — the per-event cell ids too.
class DistCaptureSink final : public stream::EventSink {
 public:
  explicit DistCaptureSink(DistResult& out) : out_(out) {}
  void on_event(const ControlEvent& e) override { out_.events.push_back(e); }
  void on_event_columns(const EventColumnsView& cols) override {
    for (std::size_t i = 0; i < cols.n; ++i) {
      out_.events.push_back(cols[i]);
      if (cols.has_cells()) out_.cells.push_back(cols.cell[i]);
    }
  }

 private:
  DistResult& out_;
};

struct DistConfig {
  std::string ckpt_dir;        // empty = checkpointing off
  std::uint64_t interval = 2;  // checkpoint interval in slices
  bool resume = false;
  // Rank -> kill that rank's transport after this many sends (0 = never).
  std::vector<std::size_t> kill_after;
  // Rank -> wedge that rank's transport after this many sends (0 = never).
  // Only meaningful under supervision with a heartbeat deadline — an
  // unsupervised merge would block on the silent rank forever.
  std::vector<std::size_t> hang_after;
  // Re-arm the configured fault on every respawned incarnation too (drives
  // the restart budget to exhaustion). Default: only the first incarnation
  // is faulty, so a heal succeeds.
  bool fault_every_incarnation = false;
  // Worker heartbeat period (WorkerOptions::heartbeat_ms); 0 = none.
  int heartbeat_ms = 0;
  // Self-healing policy; enabled wires a thread-respawning RankControl.
  SuperviseOptions supervise;
  // Per-rank obs registries (size num_ranks) + a coordinator registry.
  std::vector<obs::Registry>* rank_metrics = nullptr;
  obs::Registry* coord_metrics = nullptr;
  std::size_t worker_shards = 1;
  // Spatial layer shared by every rank and the coordinator (must outlive
  // the run); null = no spatial layer.
  const spatial::SpatialConfig* spatial = nullptr;
};

// Runs an in-process distributed generation: one std::thread per worker
// rank (respawned incarnations included) over socketpair transports,
// run_merge on the calling thread.
DistResult run_dist(const stream::PopulationPlan& plan, unsigned n,
                    const DistConfig& cfg = {}) {
  // Transports (and fault decorators) for every incarnation; pointers into
  // this vector stay valid as it grows.
  std::vector<std::unique_ptr<RankTransport>> owned;
  std::vector<std::thread> rank_thread(n);        // current incarnation
  std::vector<RankTransport*> worker_end(n, nullptr);
  std::vector<unsigned> incarnation(n, 0);

  CoordinatorOptions copts;
  copts.stream.slice_ms = k_slice;
  copts.stream.checkpoint.dir = cfg.ckpt_dir;
  copts.stream.checkpoint.interval_slices = cfg.interval;
  copts.stream.metrics = cfg.coord_metrics;
  copts.stream.spatial = cfg.spatial;
  if (cfg.resume) {
    copts.resume = prepare_resume(cfg.ckpt_dir, plan, n, k_slice);
  }

  // Starts one incarnation of rank r and returns its coordinator-side
  // transport. Called from the merge thread only (initial spawn + respawn),
  // so the bookkeeping needs no locking.
  auto start_worker = [&](unsigned r,
                          const std::string& resume_dir) -> RankTransport* {
    auto [w, c] = make_transport_pair();
    RankTransport* base = w.get();
    RankTransport* coord = c.get();
    owned.push_back(std::move(w));
    owned.push_back(std::move(c));
    const bool faulty = incarnation[r] == 0 || cfg.fault_every_incarnation;
    ++incarnation[r];
    RankTransport* use = base;
    const std::size_t kill =
        r < cfg.kill_after.size() ? cfg.kill_after[r] : 0;
    const std::size_t hang =
        r < cfg.hang_after.size() ? cfg.hang_after[r] : 0;
    if (faulty && kill != 0) {
      owned.push_back(std::make_unique<DyingTransport>(*base, kill));
      use = owned.back().get();
    } else if (faulty && hang != 0) {
      owned.push_back(std::make_unique<SilentTransport>(*base, hang));
      use = owned.back().get();
    }
    worker_end[r] = use;
    rank_thread[r] = std::thread([&plan, &cfg, &copts, n, r, use,
                                  resume_dir] {
      WorkerOptions w;
      w.rank = r;
      w.num_ranks = n;
      w.stream.num_shards = cfg.worker_shards;
      w.stream.num_threads = 1;
      w.stream.slice_ms = k_slice;
      w.stream.checkpoint.interval_slices = cfg.interval;
      w.ship_checkpoints = !cfg.ckpt_dir.empty();
      w.resume_dir = resume_dir;
      w.heartbeat_ms = cfg.heartbeat_ms;
      w.stream.spatial = cfg.spatial;
      if (cfg.rank_metrics) w.stream.metrics = &(*cfg.rank_metrics)[r];
      try {
        run_worker(plan, *use, w);
      } catch (...) {
        // The coordinator surfaces the failure; the thread just exits.
      }
    });
    return coord;
  };

  std::vector<RankTransport*> transports;
  for (unsigned r = 0; r < n; ++r) {
    std::string resume_dir;
    if (cfg.resume && copts.resume) {
      resume_dir =
          rank_checkpoint_dir(cfg.ckpt_dir, copts.resume->watermark, r);
    }
    transports.push_back(start_worker(r, resume_dir));
  }

  LambdaRankControl control;
  control.kill = [&](unsigned r) {
    // abort() releases a sender blocked (or wedged) in the decorator and
    // makes every further send throw — the thread analogue of SIGKILL.
    if (worker_end[r] != nullptr) worker_end[r]->abort();
    if (rank_thread[r].joinable()) rank_thread[r].join();
  };
  control.resp = [&](unsigned r, const std::string& resume_dir) {
    return start_worker(r, resume_dir);
  };
  copts.supervise = cfg.supervise;
  if (cfg.supervise.enabled) copts.control = &control;

  DistResult out;
  DistCaptureSink sink(out);
  auto shutdown_workers = [&] {
    for (unsigned r = 0; r < n; ++r) {
      if (worker_end[r] != nullptr) worker_end[r]->abort();
      if (rank_thread[r].joinable()) rank_thread[r].join();
    }
  };
  try {
    out.stats = run_merge(plan, transports, sink, copts);
  } catch (...) {
    shutdown_workers();
    throw;
  }
  shutdown_workers();
  return out;
}

std::string temp_dir(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("cpg_dist_") + tag + "_" +
                    std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

// ---------------------------------------------------------------------------
// Wire codec

TEST(DistWire, HelloRoundTrip) {
  HelloFrame h;
  h.rank = 3;
  h.num_ranks = 8;
  const HelloFrame d = decode_hello(encode_hello(h));
  EXPECT_EQ(d.proto, k_proto_version);
  EXPECT_EQ(d.rank, 3u);
  EXPECT_EQ(d.num_ranks, 8u);
}

TEST(DistWire, SliceEndRoundTrip) {
  SliceEndFrame s;
  s.slice = 17;
  s.events = 123456789;
  const SliceEndFrame d = decode_slice_end(encode_slice_end(s));
  EXPECT_EQ(d.slice, 17u);
  EXPECT_EQ(d.events, 123456789u);
}

TEST(DistWire, EventsRoundTrip) {
  std::vector<ControlEvent> in;
  for (int i = 0; i < 100; ++i) {
    ControlEvent e;
    e.t_ms = i * 1000 - 50;  // include a negative timestamp
    e.ue_id = static_cast<UeId>(i * 7);
    e.type = static_cast<EventType>(i % 4);
    in.push_back(e);
  }
  std::string payload;
  append_events(payload, in);
  std::vector<ControlEvent> out;
  decode_events(payload, out);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].t_ms, in[i].t_ms);
    EXPECT_EQ(out[i].ue_id, in[i].ue_id);
    EXPECT_EQ(out[i].type, in[i].type);
  }
}

TEST(DistWire, CheckpointRoundTrip) {
  const std::string bytes = "opaque checkpoint\0bytes";
  const std::string payload = encode_checkpoint(42, bytes);
  const auto [wm, got] = decode_checkpoint(payload);
  EXPECT_EQ(wm, 42u);
  EXPECT_EQ(got, bytes);
}

TEST(DistWire, FinishRoundTrip) {
  stream::StreamStats s;
  s.events = 1000;
  s.slices = 12;
  s.start_slice = 4;
  s.checkpoints_written = 3;
  s.num_ues = 64;
  s.num_shards = 2;
  s.peak_buffered_events = 555;
  s.cohort_joins = 7;
  s.cohort_leaves = 5;
  s.migrations = 2;
  const stream::StreamStats d = decode_finish(encode_finish(s));
  EXPECT_EQ(d.events, s.events);
  EXPECT_EQ(d.slices, s.slices);
  EXPECT_EQ(d.start_slice, s.start_slice);
  EXPECT_EQ(d.checkpoints_written, s.checkpoints_written);
  EXPECT_EQ(d.num_ues, s.num_ues);
  EXPECT_EQ(d.num_shards, s.num_shards);
  EXPECT_EQ(d.peak_buffered_events, s.peak_buffered_events);
  EXPECT_EQ(d.cohort_joins, s.cohort_joins);
  EXPECT_EQ(d.cohort_leaves, s.cohort_leaves);
  EXPECT_EQ(d.migrations, s.migrations);
}

TEST(DistWire, TruncatedPayloadIsCleanError) {
  const std::string payload = encode_slice_end({17, 9});
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_THROW(decode_slice_end(payload.substr(0, cut)),
                 std::runtime_error)
        << "cut at " << cut;
  }
  std::string evs;
  append_events(evs, std::vector<ControlEvent>(3));
  EXPECT_THROW(
      {
        std::vector<ControlEvent> out;
        decode_events(evs.substr(0, evs.size() - 1), out);
      },
      std::runtime_error);
}

// ---------------------------------------------------------------------------
// Transport

TEST(DistTransport, FramesCrossThePair) {
  auto [a, b] = make_transport_pair();
  a->send(FrameType::hello, "payload-1");
  a->send(FrameType::events, std::string(100000, 'x'));
  auto f1 = b->recv();
  ASSERT_TRUE(f1.has_value());
  EXPECT_EQ(f1->type, FrameType::hello);
  EXPECT_EQ(f1->payload, "payload-1");
  auto f2 = b->recv();
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(f2->type, FrameType::events);
  EXPECT_EQ(f2->payload.size(), 100000u);
}

TEST(DistTransport, CleanEofIsNullopt) {
  auto [a, b] = make_transport_pair();
  a->send(FrameType::finish, "");
  a.reset();  // close the peer
  auto f = b->recv();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->type, FrameType::finish);
  EXPECT_FALSE(b->recv().has_value());
}

TEST(DistTransport, TornFrameThrows) {
  auto [a, b] = make_transport_pair();
  // Half a length prefix, then EOF: a torn frame, not a clean close.
  const char partial[2] = {0x10, 0x00};
  ASSERT_EQ(::write(a->fd(), partial, sizeof partial),
            static_cast<ssize_t>(sizeof partial));
  a.reset();
  EXPECT_THROW(b->recv(), std::runtime_error);
}

TEST(DistTransport, AbortUnblocksABlockedReceiver) {
  auto [a, b] = make_transport_pair();
  std::thread aborter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    b->abort();
  });
  // recv blocks until the abort; afterwards it must not hang and must not
  // report a clean finish-capable stream.
  try {
    auto f = b->recv();
    EXPECT_FALSE(f.has_value());
  } catch (const std::runtime_error&) {
    // acceptable: shutdown may surface as an error
  }
  aborter.join();
  EXPECT_THROW(a->send(FrameType::hello, "x"), std::runtime_error);
}

// Regression for the short-write/EINTR audit: force every send through the
// partial-write path (tiny socket buffers) while peppering both endpoints
// with signals, so send/recv return short counts and EINTR constantly. The
// frames must still arrive complete and byte-identical — the failure mode
// this guards against is a write_all/read_exact that treats a short count
// or EINTR as success or as an error.
TEST(DistTransport, LargeFramesSurviveShortWritesAndSignals) {
  // No-op handler installed *without* SA_RESTART, so a signal interrupts
  // send/recv with EINTR instead of transparently restarting it.
  struct sigaction sa{}, old{};
  sa.sa_handler = [](int) {};
  sa.sa_flags = 0;
  sigemptyset(&sa.sa_mask);
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

  auto [a, b] = make_transport_pair();
  const int small = 4096;
  ASSERT_EQ(::setsockopt(a->fd(), SOL_SOCKET, SO_SNDBUF, &small,
                         sizeof small), 0);
  ASSERT_EQ(::setsockopt(b->fd(), SOL_SOCKET, SO_RCVBUF, &small,
                         sizeof small), 0);

  std::string payload(4 * 1024 * 1024, '\0');
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i * 131 + (i >> 9));
  }

  constexpr int k_frames = 4;
  std::atomic<bool> done{false};
  const pthread_t receiver = ::pthread_self();
  std::thread sender([&] {
    for (int i = 0; i < k_frames; ++i) {
      a->send(FrameType::events, payload);
    }
    a->send(FrameType::finish, "");
  });
  std::thread pepperer([&] {
    while (!done.load()) {
      ::pthread_kill(sender.native_handle(), SIGUSR1);
      ::pthread_kill(receiver, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  for (int i = 0; i < k_frames; ++i) {
    auto f = b->recv();
    ASSERT_TRUE(f.has_value()) << "frame " << i;
    EXPECT_EQ(f->type, FrameType::events);
    ASSERT_EQ(f->payload.size(), payload.size()) << "frame " << i;
    EXPECT_TRUE(f->payload == payload) << "frame " << i << " corrupted";
  }
  auto fin = b->recv();
  ASSERT_TRUE(fin.has_value());
  EXPECT_EQ(fin->type, FrameType::finish);

  // The receiver drained every frame, so the sender cannot be blocked; stop
  // the pepperer before joining it (pthread_kill on a joined thread is UB).
  done = true;
  pepperer.join();
  sender.join();
  a.reset();  // clean close
  EXPECT_FALSE(b->recv().has_value());
  ASSERT_EQ(::sigaction(SIGUSR1, &old, nullptr), 0);
}

// ---------------------------------------------------------------------------
// Rank plan slicing

TEST(DistPlan, RankSlicesPartitionTheSegments) {
  const stream::PopulationPlan& plan = churny().plan;
  for (const unsigned n : {1u, 3u, 4u}) {
    std::size_t total = 0;
    for (unsigned r = 0; r < n; ++r) {
      const stream::PopulationPlan s =
          stream::slice_plan_for_rank(plan, r, n);
      // Shared identity: registry, window, seed, models, phases,
      // fingerprint are untouched.
      EXPECT_EQ(s.device_of.size(), plan.device_of.size());
      EXPECT_EQ(s.seed, plan.seed);
      EXPECT_EQ(s.t_begin, plan.t_begin);
      EXPECT_EQ(s.t_end, plan.t_end);
      EXPECT_EQ(s.fingerprint, plan.fingerprint);
      EXPECT_EQ(s.models.size(), plan.models.size());
      EXPECT_EQ(s.phases.size(), plan.phases.size());
      for (const stream::UeSegment& seg : s.segments) {
        EXPECT_EQ(seg.ue % n, r);
      }
      total += s.segments.size();
    }
    EXPECT_EQ(total, plan.segments.size());
  }
}

TEST(DistPlan, InvalidRankArgsThrow) {
  EXPECT_THROW(stream::slice_plan_for_rank(stationary(), 0, 0),
               std::invalid_argument);
  EXPECT_THROW(stream::slice_plan_for_rank(stationary(), 2, 2),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Merge determinism: N ranks == 1 process, any configuration

TEST(DistMerge, StationaryMatchesSingleProcessForAnyRankCount) {
  const std::vector<ControlEvent> ref = run_single(stationary());
  ASSERT_GT(ref.size(), 50u);
  for (const unsigned n : {1u, 2u, 4u}) {
    const DistResult got = run_dist(stationary(), n);
    ASSERT_EQ(got.events.size(), ref.size()) << "ranks=" << n;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(got.events[i].t_ms, ref[i].t_ms) << "ranks=" << n;
      ASSERT_EQ(got.events[i].ue_id, ref[i].ue_id) << "ranks=" << n;
      ASSERT_EQ(got.events[i].type, ref[i].type) << "ranks=" << n;
    }
    EXPECT_EQ(got.stats.totals.events, ref.size());
    EXPECT_EQ(got.stats.ranks.size(), n);
    std::uint64_t rank_sum = 0;
    for (const stream::StreamStats& rs : got.stats.ranks) {
      rank_sum += rs.events;
    }
    EXPECT_EQ(rank_sum, ref.size());
  }
}

TEST(DistMerge, ScenarioMatchesSingleProcessForAnyRankCount) {
  const std::vector<ControlEvent> ref = run_single(churny().plan);
  ASSERT_GT(ref.size(), 50u);
  for (const unsigned n : {1u, 2u, 4u}) {
    const DistResult got = run_dist(churny().plan, n);
    ASSERT_EQ(got.events.size(), ref.size()) << "ranks=" << n;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(got.events[i].t_ms, ref[i].t_ms) << "ranks=" << n;
      ASSERT_EQ(got.events[i].ue_id, ref[i].ue_id) << "ranks=" << n;
      ASSERT_EQ(got.events[i].type, ref[i].type) << "ranks=" << n;
    }
  }
}

TEST(DistMerge, SpatialCellsMatchSingleProcessForAnyRankCount) {
  const spatial::SpatialConfig spatial_cfg =
      spatial::load_spatial("grid:8x8x400");

  // Single-process annotated reference over the same plan.
  std::vector<ControlEvent> ref_events;
  std::vector<std::uint32_t> ref_cells;
  {
    stream::StreamOptions opts;
    opts.num_shards = 2;
    opts.num_threads = 1;
    opts.slice_ms = k_slice;
    opts.spatial = &spatial_cfg;
    DistResult ref;
    DistCaptureSink sink(ref);
    stream::stream_generate(churny().plan, opts, sink);
    ref_events = std::move(ref.events);
    ref_cells = std::move(ref.cells);
  }
  ASSERT_GT(ref_events.size(), 50u);
  ASSERT_EQ(ref_cells.size(), ref_events.size());

  for (const unsigned n : {1u, 2u, 4u}) {
    DistConfig cfg;
    cfg.spatial = &spatial_cfg;
    cfg.worker_shards = n == 2 ? 3 : 1;  // shard count must not matter
    const DistResult got = run_dist(churny().plan, n, cfg);
    SCOPED_TRACE("ranks=" + std::to_string(n));
    ASSERT_EQ(got.events.size(), ref_events.size());
    ASSERT_EQ(got.cells.size(), ref_cells.size());
    for (std::size_t i = 0; i < ref_events.size(); ++i) {
      ASSERT_EQ(got.events[i].t_ms, ref_events[i].t_ms);
      ASSERT_EQ(got.events[i].ue_id, ref_events[i].ue_id);
      ASSERT_EQ(got.events[i].type, ref_events[i].type);
      ASSERT_EQ(got.cells[i], ref_cells[i]);
    }
  }
}

TEST(DistMerge, WorkerShardCountNeverChangesTheMergedStream) {
  const std::vector<ControlEvent> ref = run_single(churny().plan);
  DistConfig cfg;
  cfg.worker_shards = 3;
  const DistResult got = run_dist(churny().plan, 2, cfg);
  ASSERT_EQ(got.events.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(got.events[i].t_ms, ref[i].t_ms);
    ASSERT_EQ(got.events[i].ue_id, ref[i].ue_id);
    ASSERT_EQ(got.events[i].type, ref[i].type);
  }
}

// ---------------------------------------------------------------------------
// Distributed checkpointing: kill a rank, resume, identical stream

void expect_tail_matches(const std::vector<ControlEvent>& ref,
                         const std::vector<ControlEvent>& tail,
                         const stream::PopulationPlan& plan,
                         std::uint64_t watermark) {
  const TimeMs boundary = plan.t_begin + static_cast<TimeMs>(watermark) *
                                             k_slice;
  std::vector<ControlEvent> want;
  for (const ControlEvent& e : ref) {
    if (e.t_ms >= boundary) want.push_back(e);
  }
  ASSERT_EQ(tail.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(tail[i].t_ms, want[i].t_ms);
    ASSERT_EQ(tail[i].ue_id, want[i].ue_id);
    ASSERT_EQ(tail[i].type, want[i].type);
  }
}

TEST(DistCheckpoint, KillAndResumeReproducesTheStream) {
  const std::vector<ControlEvent> ref = run_single(stationary());
  // Two distinct kill points: early (just after the first commit window)
  // and late — resume must reproduce the exact remaining stream from both.
  for (const std::size_t kill_at : {std::size_t{9}, std::size_t{14}}) {
    const std::string dir =
        temp_dir(("kill" + std::to_string(kill_at)).c_str());
    DistConfig cfg;
    cfg.ckpt_dir = dir;
    cfg.kill_after = {0, 0, kill_at, 0};  // rank 2 dies
    EXPECT_THROW(run_dist(stationary(), 4, cfg), std::runtime_error);

    const std::optional<DistManifest> m = load_manifest(dir);
    ASSERT_TRUE(m.has_value()) << "kill_at=" << kill_at
                               << ": no checkpoint was committed";
    EXPECT_GT(m->watermark, 0u);
    EXPECT_EQ(m->num_ranks, 4u);

    DistConfig res;
    res.ckpt_dir = dir;
    res.resume = true;
    const DistResult got = run_dist(stationary(), 4, res);
    expect_tail_matches(ref, got.events, stationary(), m->watermark);
    std::filesystem::remove_all(dir);
  }
}

TEST(DistCheckpoint, ScenarioKillAndResumeReproducesTheStream) {
  const std::vector<ControlEvent> ref = run_single(churny().plan);
  const std::string dir = temp_dir("scn_kill");
  DistConfig cfg;
  cfg.ckpt_dir = dir;
  cfg.kill_after = {0, 11};  // rank 1 of 2 dies
  EXPECT_THROW(run_dist(churny().plan, 2, cfg), std::runtime_error);
  const std::optional<DistManifest> m = load_manifest(dir);
  ASSERT_TRUE(m.has_value());
  EXPECT_GT(m->watermark, 0u);

  DistConfig res;
  res.ckpt_dir = dir;
  res.resume = true;
  const DistResult got = run_dist(churny().plan, 2, res);
  expect_tail_matches(ref, got.events, churny().plan, m->watermark);
  std::filesystem::remove_all(dir);
}

TEST(DistCheckpoint, ResumeWithNoManifestStartsFresh) {
  const std::vector<ControlEvent> ref = run_single(stationary());
  const std::string dir = temp_dir("fresh");
  DistConfig cfg;
  cfg.ckpt_dir = dir;
  cfg.resume = true;  // no manifest on disk yet
  const DistResult got = run_dist(stationary(), 2, cfg);
  ASSERT_EQ(got.events.size(), ref.size());
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Failure surfacing

TEST(DistMerge, RankDeathWithoutCheckpointingNamesTheRank) {
  DistConfig cfg;
  cfg.kill_after = {0, 0, 5};  // rank 2 of 3 dies, nothing to resume from
  try {
    run_dist(stationary(), 3, cfg);
    FAIL() << "expected the merge to fail";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("rank 2"), std::string::npos)
        << e.what();
  }
}

TEST(DistMerge, EofBeforeHelloNamesTheRank) {
  auto [w, c] = make_transport_pair();
  w.reset();  // worker dies before saying hello
  std::vector<RankTransport*> transports{c.get()};
  stream::NullSink sink;
  CoordinatorOptions copts;
  copts.stream.slice_ms = k_slice;
  try {
    run_merge(stationary(), transports, sink, copts);
    FAIL() << "expected the merge to fail";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("rank 0"), std::string::npos)
        << e.what();
  }
}

TEST(DistMerge, HelloRankMismatchIsRejected) {
  auto [w, c] = make_transport_pair();
  std::thread impostor([&] {
    HelloFrame h;
    h.rank = 5;  // claims a rank the coordinator did not assign
    h.num_ranks = 1;
    try {
      w->send(FrameType::hello, encode_hello(h));
    } catch (...) {
    }
    while (w->recv().has_value()) {
    }
  });
  std::vector<RankTransport*> transports{c.get()};
  stream::NullSink sink;
  CoordinatorOptions copts;
  copts.stream.slice_ms = k_slice;
  EXPECT_THROW(run_merge(stationary(), transports, sink, copts),
               std::runtime_error);
  c->abort();
  impostor.join();
}

// ---------------------------------------------------------------------------
// Manifest

TEST(DistManifestIo, SaveLoadRoundTrip) {
  const std::string dir = temp_dir("manifest");
  DistManifest m;
  m.num_ranks = 4;
  m.watermark = 6;
  m.seed = 99;
  m.fingerprint = 0xdeadbeef;
  m.t_begin = 1000;
  m.t_end = 2000;
  m.slice_ms = 100;
  m.sink_token = "tok:with spaces\nand a newline";
  save_manifest(m, dir);
  const std::optional<DistManifest> got = load_manifest(dir);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->num_ranks, m.num_ranks);
  EXPECT_EQ(got->watermark, m.watermark);
  EXPECT_EQ(got->seed, m.seed);
  EXPECT_EQ(got->fingerprint, m.fingerprint);
  EXPECT_EQ(got->t_begin, m.t_begin);
  EXPECT_EQ(got->t_end, m.t_end);
  EXPECT_EQ(got->slice_ms, m.slice_ms);
  EXPECT_EQ(got->sink_token, m.sink_token);
  std::filesystem::remove_all(dir);
}

TEST(DistManifestIo, MissingManifestIsNullopt) {
  const std::string dir = temp_dir("nomanifest");
  EXPECT_FALSE(load_manifest(dir).has_value());
  std::filesystem::remove_all(dir);
}

TEST(DistManifestIo, NewerVersionIsAOneLineActionableError) {
  const std::string dir = temp_dir("newver");
  {
    std::ofstream os(manifest_path(dir));
    os << "cpg-dist-manifest 99\n";
  }
  try {
    load_manifest(dir);
    FAIL() << "expected a version error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_EQ(msg.find('\n'), std::string::npos) << msg;
    EXPECT_NE(msg.find("version"), std::string::npos) << msg;
  }
  std::filesystem::remove_all(dir);
}

TEST(DistManifestIo, PrepareResumeNamesTheMismatchedField) {
  const std::string dir = temp_dir("mismatch");
  DistManifest m;
  m.num_ranks = 4;
  m.watermark = 2;
  m.seed = stationary().seed;
  m.fingerprint = stationary().fingerprint;
  m.t_begin = stationary().t_begin;
  m.t_end = stationary().t_end;
  m.slice_ms = k_slice;
  save_manifest(m, dir);
  for (unsigned r = 0; r < 4; ++r) {
    std::filesystem::create_directories(rank_checkpoint_dir(dir, 2, r));
    std::ofstream(rank_checkpoint_dir(dir, 2, r) + "/stream.ckpt") << "x";
  }

  // Matching run resumes.
  EXPECT_TRUE(prepare_resume(dir, stationary(), 4, k_slice).has_value());

  struct Case {
    const char* field;
    unsigned ranks;
    TimeMs slice;
  };
  for (const Case& c : {Case{"rank", 2u, k_slice},
                        Case{"slice", 4u, k_slice / 3}}) {
    try {
      prepare_resume(dir, stationary(), c.ranks, c.slice);
      FAIL() << "expected a mismatch error for " << c.field;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(c.field), std::string::npos)
          << e.what();
    }
  }
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Cross-rank obs aggregation

TEST(DistObs, CoordinatorAggregatesRankRegistriesWithRankLabels) {
  std::vector<obs::Registry> rank_regs(2);
  obs::Registry coord;
  DistConfig cfg;
  cfg.rank_metrics = &rank_regs;
  cfg.coord_metrics = &coord;
  const DistResult got = run_dist(stationary(), 2, cfg);
  ASSERT_GT(got.events.size(), 0u);

  std::uint64_t merged_rank_events = 0;
  bool saw_rank_label = false;
  for (const obs::FamilySnapshot& fam : coord.snapshot()) {
    if (fam.name != "cpg_stream_delivered_events_total") continue;
    for (const obs::SeriesSnapshot& s : fam.series) {
      for (const auto& [k, v] : s.labels) {
        if (k == "rank") {
          saw_rank_label = true;
          merged_rank_events += s.counter;
        }
      }
    }
  }
  EXPECT_TRUE(saw_rank_label)
      << "per-rank series did not reach the coordinator registry";
  EXPECT_EQ(merged_rank_events, got.events.size());
}

// ---------------------------------------------------------------------------
// Supervision: kill/hang a rank mid-run, heal it, and the merged stream must
// stay byte-identical to an unfaulted run.

void expect_same_stream(const std::vector<ControlEvent>& got,
                        const std::vector<ControlEvent>& ref,
                        const std::string& what) {
  ASSERT_EQ(got.size(), ref.size()) << what;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(got[i].t_ms, ref[i].t_ms) << what << " @" << i;
    ASSERT_EQ(got[i].ue_id, ref[i].ue_id) << what << " @" << i;
    ASSERT_EQ(got[i].type, ref[i].type) << what << " @" << i;
  }
}

SuperviseOptions fast_supervise(unsigned max_restarts = 4) {
  SuperviseOptions sup;
  sup.enabled = true;
  sup.max_restarts = max_restarts;
  sup.backoff_base_ms = 1;
  sup.backoff_cap_ms = 4;
  return sup;
}

TEST(Supervision, KilledRankIsHealedAndTheStreamStaysByteIdentical) {
  const std::vector<ControlEvent> ref = run_single(stationary());
  // Early and late kill sites: the heal must replay correctly both before
  // the first committed checkpoint and from a mid-run one.
  for (const std::size_t kill_at : {std::size_t{5}, std::size_t{13}}) {
    const std::string dir =
        temp_dir(("sup_kill" + std::to_string(kill_at)).c_str());
    DistConfig cfg;
    cfg.ckpt_dir = dir;
    cfg.kill_after = {0, kill_at, 0};
    cfg.supervise = fast_supervise();
    const DistResult got = run_dist(stationary(), 3, cfg);
    expect_same_stream(got.events, ref,
                       "kill_at=" + std::to_string(kill_at));
    EXPECT_EQ(got.stats.restarts, 1u);
    ASSERT_EQ(got.stats.incidents.size(), 1u);
    const Incident& inc = got.stats.incidents[0];
    EXPECT_EQ(inc.rank, 1u);
    EXPECT_EQ(inc.restart, 1u);
    EXPECT_FALSE(inc.hung);
    EXPECT_FALSE(inc.cause.empty());
    EXPECT_EQ(got.stats.totals.events, ref.size());
    std::filesystem::remove_all(dir);
  }
}

TEST(Supervision, ScenarioKilledRankIsHealed) {
  const std::vector<ControlEvent> ref = run_single(churny().plan);
  const std::string dir = temp_dir("sup_scn");
  DistConfig cfg;
  cfg.ckpt_dir = dir;
  cfg.kill_after = {9, 0};
  cfg.supervise = fast_supervise();
  const DistResult got = run_dist(churny().plan, 2, cfg);
  expect_same_stream(got.events, ref, "scenario heal");
  EXPECT_EQ(got.stats.restarts, 1u);
  std::filesystem::remove_all(dir);
}

TEST(Supervision, HealWithoutCheckpointDirReplaysFromScratch) {
  const std::vector<ControlEvent> ref = run_single(stationary());
  DistConfig cfg;  // no ckpt_dir: the respawned rank regenerates everything
  cfg.kill_after = {0, 8};
  cfg.supervise = fast_supervise();
  const DistResult got = run_dist(stationary(), 2, cfg);
  expect_same_stream(got.events, ref, "heal from scratch");
  EXPECT_EQ(got.stats.restarts, 1u);
  ASSERT_EQ(got.stats.incidents.size(), 1u);
  EXPECT_EQ(got.stats.incidents[0].replay_from, 0u);
}

TEST(Supervision, HungRankTripsTheHeartbeatDeadlineAndIsHealed) {
  const std::vector<ControlEvent> ref = run_single(stationary());
  DistConfig cfg;
  cfg.hang_after = {0, 10, 0};
  cfg.heartbeat_ms = 15;
  cfg.supervise = fast_supervise();
  cfg.supervise.heartbeat_deadline_ms = 400;
  cfg.supervise.poll_ms = 10;
  const DistResult got = run_dist(stationary(), 3, cfg);
  expect_same_stream(got.events, ref, "hang heal");
  EXPECT_EQ(got.stats.restarts, 1u);
  ASSERT_EQ(got.stats.incidents.size(), 1u);
  EXPECT_EQ(got.stats.incidents[0].rank, 1u);
  EXPECT_TRUE(got.stats.incidents[0].hung);
}

TEST(Supervision, RestartBudgetExhaustionIsAOneLineActionableError) {
  DistConfig cfg;
  cfg.kill_after = {0, 6};
  cfg.fault_every_incarnation = true;  // the rank dies every incarnation
  cfg.supervise = fast_supervise(/*max_restarts=*/2);
  std::vector<Incident> log;
  cfg.supervise.on_incident = [&](const Incident& i) { log.push_back(i); };
  try {
    run_dist(stationary(), 2, cfg);
    FAIL() << "expected restart budget exhaustion";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("restart budget exhausted (2 restarts used)"),
              std::string::npos)
        << msg;
    EXPECT_EQ(msg.find('\n'), std::string::npos) << msg;
  }
  // Two heals were attempted and logged, plus the terminal budget incident.
  EXPECT_EQ(log.size(), 3u);
}

TEST(Supervision, EnabledWithoutAControlSeamIsAnInvalidArgument) {
  auto [w, c] = make_transport_pair();
  CoordinatorOptions copts;
  copts.stream.slice_ms = k_slice;
  copts.supervise.enabled = true;  // but no copts.control
  stream::CallbackSink sink([](const ControlEvent&) {});
  std::vector<RankTransport*> ranks{c.get()};
  EXPECT_THROW(run_merge(stationary(), ranks, sink, copts),
               std::invalid_argument);
}

TEST(Supervision, RestartsAndDegradedTimeAreExportedAsMetrics) {
  obs::Registry coord;
  const std::string dir = temp_dir("sup_obs");
  DistConfig cfg;
  cfg.ckpt_dir = dir;
  cfg.kill_after = {7, 0};
  cfg.supervise = fast_supervise();
  cfg.coord_metrics = &coord;
  const DistResult got = run_dist(stationary(), 2, cfg);
  EXPECT_EQ(got.stats.restarts, 1u);
  std::uint64_t restarts = 0;
  bool saw_degraded = false;
  for (const obs::FamilySnapshot& fam : coord.snapshot()) {
    if (fam.name == "cpg_dist_restarts_total") {
      for (const obs::SeriesSnapshot& s : fam.series) restarts += s.counter;
    }
    if (fam.name == "cpg_dist_degraded_ms_total") saw_degraded = true;
  }
  EXPECT_EQ(restarts, 1u);
  EXPECT_TRUE(saw_degraded);
  std::filesystem::remove_all(dir);
}

// Randomized chaos sweep: seeded kill/hang schedules across rank counts,
// with and without checkpointing. Every trial must either heal to a
// byte-identical stream or (never, with this budget) fail loudly.
TEST(SupervisionChaos, RandomKillAndHangSchedulesStayByteIdentical) {
  const std::vector<ControlEvent> ref = run_single(stationary());
  std::mt19937 rng(20260809u);
  for (int trial = 0; trial < 4; ++trial) {
    const unsigned n = 2 + rng() % 2;  // 2..3 ranks
    DistConfig cfg;
    cfg.supervise = fast_supervise(/*max_restarts=*/8);
    const bool use_ckpt = trial % 2 == 0;
    std::string dir;
    if (use_ckpt) {
      dir = temp_dir(("chaos" + std::to_string(trial)).c_str());
      cfg.ckpt_dir = dir;
    }
    cfg.kill_after.assign(n, 0);
    cfg.hang_after.assign(n, 0);
    const unsigned victim = rng() % n;
    const std::size_t site = 2 + rng() % 12;  // dies/wedges after 2..13 sends
    if (rng() % 2 == 0) {
      cfg.kill_after[victim] = site;
    } else {
      cfg.hang_after[victim] = site;
      cfg.heartbeat_ms = 15;
      cfg.supervise.heartbeat_deadline_ms = 400;
      cfg.supervise.poll_ms = 10;
    }
    SCOPED_TRACE("trial=" + std::to_string(trial) + " n=" +
                 std::to_string(n) + " victim=" + std::to_string(victim) +
                 " site=" + std::to_string(site));
    const DistResult got = run_dist(stationary(), n, cfg);
    expect_same_stream(got.events, ref, "chaos trial");
    EXPECT_GE(got.stats.restarts, 1u);
    if (!dir.empty()) std::filesystem::remove_all(dir);
  }
}

}  // namespace
}  // namespace cpg::dist
