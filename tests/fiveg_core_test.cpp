#include <gtest/gtest.h>

#include "generator/traffic_generator.h"
#include "mcn/fiveg_core.h"
#include "model/fit.h"
#include "model/nextg.h"
#include "test_util.h"

namespace cpg::mcn {
namespace {

TEST(FiveGCore, NfNames) {
  EXPECT_EQ(to_string(FiveGNf::amf), "AMF");
  EXPECT_EQ(to_string(FiveGNf::smf), "SMF");
  EXPECT_EQ(to_string(FiveGNf::ausf), "AUSF");
  EXPECT_EQ(to_string(FiveGNf::udm), "UDM");
  EXPECT_EQ(to_string(FiveGNf::pcf), "PCF");
}

TEST(FiveGCore, ProceduresStartAtAmf) {
  for (EventType e : {EventType::atch, EventType::dtch, EventType::srv_req,
                      EventType::s1_conn_rel, EventType::ho}) {
    const auto proc = fiveg_procedure(e);
    ASSERT_FALSE(proc.empty()) << to_string(e);
    EXPECT_EQ(proc.front().station,
              static_cast<std::uint8_t>(index_of(FiveGNf::amf)));
  }
}

TEST(FiveGCore, TauHasNoProcedure) {
  EXPECT_TRUE(fiveg_procedure(EventType::tau).empty());
}

TEST(FiveGCore, RegistrationTouchesAuthenticationPath) {
  bool ausf = false, udm = false, pcf = false;
  for (const GenericStep& s : fiveg_procedure(EventType::atch)) {
    ausf |= s.station == static_cast<std::uint8_t>(index_of(FiveGNf::ausf));
    udm |= s.station == static_cast<std::uint8_t>(index_of(FiveGNf::udm));
    pcf |= s.station == static_cast<std::uint8_t>(index_of(FiveGNf::pcf));
  }
  EXPECT_TRUE(ausf);
  EXPECT_TRUE(udm);
  EXPECT_TRUE(pcf);
}

TEST(FiveGCore, SingleServiceRequestLatency) {
  Trace t;
  const UeId u = t.add_ue(DeviceType::phone);
  t.add_event(0, u, EventType::srv_req);
  t.finalize();
  FiveGCoreConfig config;
  const auto result = simulate_5g(t, config);
  EXPECT_EQ(result.procedures, 1u);
  EXPECT_EQ(result.messages, 3u);
  // 90 + 60 + 40 service + 2 hops of 50.
  EXPECT_NEAR(result.latency_us.max, 90 + 60 + 40 + 100, 1e-6);
}

TEST(FiveGCore, TauEventsAreIgnoredNotCrashed) {
  Trace t;
  const UeId u = t.add_ue(DeviceType::phone);
  t.add_event(0, u, EventType::srv_req);
  t.add_event(10, u, EventType::tau);
  t.finalize();
  const auto result = simulate_5g(t, {});
  EXPECT_EQ(result.procedures, 1u);
  EXPECT_EQ(result.ignored_events, 1u);
}

TEST(FiveGCore, SaTrafficEndToEnd) {
  model::FitOptions opts;
  opts.clustering.theta_n = 30;
  const auto lte =
      model::fit_model(testutil::small_ground_truth(150, 24.0, 81), opts);
  const auto sa = model::derive_5g(lte, model::sa_defaults());
  gen::GenerationRequest req;
  req.ue_counts = {200, 80, 40};
  req.start_hour = 18;
  req.seed = 4;
  const Trace t = gen::generate_trace(sa, req);
  ASSERT_FALSE(t.empty());
  const auto result = simulate_5g(t, {});
  EXPECT_EQ(result.procedures, t.num_events());
  EXPECT_EQ(result.ignored_events, 0u);
  // AMF is the busiest NF (it fronts every procedure).
  const auto& amf = result.nf[index_of(FiveGNf::amf)];
  for (FiveGNf nf : {FiveGNf::smf, FiveGNf::ausf, FiveGNf::udm,
                     FiveGNf::pcf}) {
    EXPECT_GE(amf.busy_us, result.nf[index_of(nf)].busy_us)
        << to_string(nf);
  }
}

TEST(QueueingEngine, RejectsBadStationCount) {
  Trace t;
  const UeId u = t.add_ue(DeviceType::phone);
  t.add_event(0, u, EventType::srv_req);
  t.finalize();
  QueueingConfig qc;
  qc.num_stations = 0;
  EXPECT_THROW(run_queueing(t, fiveg_procedure, qc), std::invalid_argument);
  qc.num_stations = k_max_stations + 1;
  EXPECT_THROW(run_queueing(t, fiveg_procedure, qc), std::invalid_argument);
}

}  // namespace
}  // namespace cpg::mcn
