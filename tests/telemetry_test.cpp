#include <gtest/gtest.h>

#include <map>

#include "core/rng.h"
#include "telemetry/count_min.h"
#include "telemetry/heavy_hitters.h"
#include "telemetry/sampling.h"
#include "test_util.h"

namespace cpg::telemetry {
namespace {

TEST(CountMin, NeverUnderestimates) {
  CountMinSketch sketch(64, 4);
  std::map<std::uint64_t, std::uint64_t> exact;
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t key = rng.uniform_index(500);
    sketch.add(key);
    ++exact[key];
  }
  for (const auto& [key, count] : exact) {
    EXPECT_GE(sketch.estimate(key), count);
  }
  EXPECT_EQ(sketch.total(), 20000u);
}

TEST(CountMin, ErrorWithinGuarantee) {
  const double epsilon = 0.01, delta = 0.01;
  auto sketch = CountMinSketch::for_error(epsilon, delta);
  std::map<std::uint64_t, std::uint64_t> exact;
  Rng rng(2);
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) {
    // Zipf-ish: heavy keys plus a long tail.
    const std::uint64_t key = rng.bernoulli(0.3)
                                  ? rng.uniform_index(10)
                                  : 10 + rng.uniform_index(5000);
    sketch.add(key);
    ++exact[key];
  }
  std::size_t violations = 0;
  for (const auto& [key, count] : exact) {
    if (sketch.estimate(key) > count + epsilon * n) ++violations;
  }
  // Allowed failure probability is delta per query; with slack:
  EXPECT_LT(static_cast<double>(violations),
            0.05 * static_cast<double>(exact.size()));
}

TEST(CountMin, ExactForSingleKey) {
  CountMinSketch sketch(1024, 3);
  sketch.add(42, 7);
  sketch.add(42, 3);
  EXPECT_EQ(sketch.estimate(42), 10u);
}

TEST(CountMin, UnseenKeyUsuallyZeroOnSparseSketch) {
  CountMinSketch sketch(4096, 4);
  for (std::uint64_t k = 0; k < 10; ++k) sketch.add(k);
  EXPECT_LE(sketch.estimate(999'999), 1u);
}

TEST(CountMin, ClearAndMerge) {
  CountMinSketch a(128, 3, 9);
  CountMinSketch b(128, 3, 9);
  a.add(1, 5);
  b.add(1, 7);
  a.merge(b);
  EXPECT_EQ(a.estimate(1), 12u);
  a.clear();
  EXPECT_EQ(a.estimate(1), 0u);
  EXPECT_EQ(a.total(), 0u);

  CountMinSketch incompatible(64, 3, 9);
  EXPECT_THROW(a.merge(incompatible), std::invalid_argument);
}

TEST(CountMin, RejectsBadParameters) {
  EXPECT_THROW(CountMinSketch(0, 3), std::invalid_argument);
  EXPECT_THROW(CountMinSketch::for_error(0.0, 0.01), std::invalid_argument);
  EXPECT_THROW(CountMinSketch::for_error(0.01, 1.5), std::invalid_argument);
}

TEST(SpaceSaving, ExactBelowCapacity) {
  SpaceSaving ss(16);
  for (int i = 0; i < 5; ++i) ss.add(7);
  for (int i = 0; i < 3; ++i) ss.add(8);
  const auto top = ss.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 7u);
  EXPECT_EQ(top[0].count, 5u);
  EXPECT_EQ(top[0].error, 0u);
  EXPECT_EQ(top[1].key, 8u);
}

TEST(SpaceSaving, FindsHeavyHittersUnderEviction) {
  SpaceSaving ss(64);
  Rng rng(3);
  // Keys 0..4 are heavy (appear ~2000x); noise keys appear once.
  std::array<std::uint64_t, 5> heavy_counts{};
  for (int i = 0; i < 30000; ++i) {
    if (rng.bernoulli(0.33)) {
      const auto k = rng.uniform_index(5);
      ++heavy_counts[k];
      ss.add(k);
    } else {
      ss.add(1000 + rng.uniform_index(100000));
    }
  }
  const auto top = ss.top(5);
  ASSERT_EQ(top.size(), 5u);
  for (const auto& entry : top) {
    EXPECT_LT(entry.key, 5u);  // all heavy keys found
    // Count is an upper bound on the true count.
    EXPECT_GE(entry.count, heavy_counts[entry.key]);
  }
}

TEST(SpaceSaving, CapacityBounded) {
  SpaceSaving ss(8);
  for (std::uint64_t k = 0; k < 1000; ++k) ss.add(k);
  EXPECT_LE(ss.size(), 8u);
  EXPECT_EQ(ss.total(), 1000u);
  EXPECT_THROW(SpaceSaving(0), std::invalid_argument);
}

TEST(Sampling, FullRateIsExact) {
  const Trace t = testutil::small_ground_truth(50, 2.0, 61);
  const auto report = evaluate_sampling(t, 1.0);
  EXPECT_EQ(report.sampled_events, t.num_events());
  EXPECT_DOUBLE_EQ(report.max_relative_error, 0.0);
}

TEST(Sampling, ErrorShrinksWithRate) {
  const Trace t = testutil::small_ground_truth(150, 6.0, 62);
  const auto low = evaluate_sampling(t, 0.001);
  const auto high = evaluate_sampling(t, 0.2);
  // Rare event types (ATCH/DTCH) keep the max error high at any affordable
  // rate -- that is the operational insight; the dominant types converge.
  const std::size_t srv = index_of(EventType::srv_req);
  EXPECT_GT(low.relative_error[srv], high.relative_error[srv]);
  EXPECT_LT(high.relative_error[srv], 0.05);
}

TEST(Sampling, EstimatesAreUnbiasedScale) {
  const Trace t = testutil::small_ground_truth(150, 6.0, 63);
  const auto report = evaluate_sampling(t, 0.5);
  for (std::size_t e = 0; e < k_num_event_types; ++e) {
    if (report.true_counts[e] < 1000) continue;
    EXPECT_NEAR(report.estimated_counts[e],
                static_cast<double>(report.true_counts[e]),
                0.1 * static_cast<double>(report.true_counts[e]));
  }
}

TEST(Sampling, PickRateReturnsCheapestQualifying) {
  const Trace t = testutil::small_ground_truth(150, 6.0, 64);
  const double rates[] = {0.0001, 0.01, 0.5, 1.0};
  const double chosen = pick_sampling_rate(t, rates, 0.60);
  EXPECT_LT(chosen, 1.0);
  // An impossible target falls back to full sampling.
  const double strict[] = {0.0001};
  EXPECT_DOUBLE_EQ(pick_sampling_rate(t, strict, 1e-9), 1.0);
}

TEST(Sampling, RejectsBadRate) {
  const Trace t = testutil::small_ground_truth(20, 1.0, 65);
  EXPECT_THROW(evaluate_sampling(t, 0.0), std::invalid_argument);
  EXPECT_THROW(evaluate_sampling(t, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace cpg::telemetry
