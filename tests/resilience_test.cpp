// Tests for the fault-tolerant streaming layer: ResilientSink retry/backoff
// math under a fake clock (exact delays, cap, jitter bounds, deadline
// abort), degradation policies (fail / drop / spill + recover_spill), and
// checkpoint/resume — including the central guarantee that a run killed at
// a failpoint-chosen slice and resumed from its checkpoint delivers a
// byte-identical stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <streambuf>
#include <string>
#include <system_error>
#include <vector>

#include "core/time_utils.h"
#include "fault/failpoint.h"
#include "generator/traffic_generator.h"
#include "model/fit.h"
#include "spatial/config.h"
#include "stream/checkpoint.h"
#include "stream/csv_sink.h"
#include "stream/event_sink.h"
#include "stream/resilient_sink.h"
#include "stream/stream_generator.h"
#include "test_util.h"

namespace cpg::stream {
namespace {

using std::chrono::milliseconds;

// ---------------------------------------------------------------------------
// ResilientSink: retry / backoff / degradation
// ---------------------------------------------------------------------------

// Inner sink that fails the first `fail_first` deliveries with the given
// exception, then accepts everything.
class FlakySink final : public EventSink {
 public:
  FlakySink(int fail_first, bool retryable)
      : fail_first_(fail_first), retryable_(retryable) {}

  void on_event(const ControlEvent& e) override {
    maybe_throw();
    events.push_back(e);
  }
  void on_events(std::span<const ControlEvent> es) override {
    maybe_throw();
    events.insert(events.end(), es.begin(), es.end());
  }

  int attempts = 0;
  std::vector<ControlEvent> events;

 private:
  void maybe_throw() {
    ++attempts;
    if (attempts <= fail_first_) {
      if (retryable_) throw fault::InjectedFault("flaky", true);
      throw SinkError("permanent", FailureClass::fatal);
    }
  }

  int fail_first_;
  bool retryable_;
};

ControlEvent make_event(TimeMs t, UeId u, EventType type) {
  ControlEvent e;
  e.t_ms = t;
  e.ue_id = u;
  e.type = type;
  return e;
}

RetryPolicy no_jitter_policy() {
  RetryPolicy rp;
  rp.max_attempts = 5;
  rp.initial_backoff = milliseconds(10);
  rp.backoff_multiplier = 2.0;
  rp.max_backoff = milliseconds(2000);
  rp.jitter = 0.0;
  rp.deadline = milliseconds(60'000);
  return rp;
}

TEST(ResilientSink, RetriesWithExponentialBackoffThenSucceeds) {
  FlakySink inner(/*fail_first=*/3, /*retryable=*/true);
  FakeRetryClock clock;
  ResilientSinkOptions opts;
  opts.retry = no_jitter_policy();
  ResilientSink sink(inner, opts, &clock);

  sink.on_event(make_event(1, 0, EventType::srv_req));
  ASSERT_EQ(inner.events.size(), 1u);
  EXPECT_EQ(inner.attempts, 4);
  // Deterministic delays with jitter off: 10, 20, 40 ms.
  const std::vector<milliseconds> want{milliseconds(10), milliseconds(20),
                                       milliseconds(40)};
  EXPECT_EQ(clock.sleeps(), want);
  EXPECT_EQ(sink.stats().retries, 3u);
  EXPECT_EQ(sink.stats().backoff_ms, 70u);
  EXPECT_EQ(sink.stats().delivered_events, 1u);
}

TEST(ResilientSink, BackoffIsCappedAtMaxBackoff) {
  FlakySink inner(/*fail_first=*/6, /*retryable=*/true);
  FakeRetryClock clock;
  ResilientSinkOptions opts;
  opts.retry = no_jitter_policy();
  opts.retry.max_attempts = 8;
  opts.retry.max_backoff = milliseconds(50);
  ResilientSink sink(inner, opts, &clock);

  sink.on_event(make_event(1, 0, EventType::srv_req));
  // 10, 20, 40 then clamped to 50.
  const std::vector<milliseconds> want{milliseconds(10), milliseconds(20),
                                       milliseconds(40), milliseconds(50),
                                       milliseconds(50), milliseconds(50)};
  EXPECT_EQ(clock.sleeps(), want);
}

TEST(ResilientSink, JitterStaysWithinConfiguredBounds) {
  FlakySink inner(/*fail_first=*/4, /*retryable=*/true);
  FakeRetryClock clock;
  ResilientSinkOptions opts;
  opts.retry = no_jitter_policy();
  opts.retry.jitter = 0.2;
  opts.retry.jitter_seed = 99;
  ResilientSink sink(inner, opts, &clock);

  sink.on_event(make_event(1, 0, EventType::srv_req));
  ASSERT_EQ(clock.sleeps().size(), 4u);
  const double base[] = {10.0, 20.0, 40.0, 80.0};
  for (std::size_t i = 0; i < 4; ++i) {
    const double d = static_cast<double>(clock.sleeps()[i].count());
    EXPECT_GE(d, 0.8 * base[i] - 1.0) << "delay " << i;
    EXPECT_LE(d, 1.2 * base[i] + 1.0) << "delay " << i;
  }
}

TEST(ResilientSink, JitterScheduleIsReproducibleFromSeed) {
  const auto run = [](std::uint64_t seed) {
    FlakySink inner(4, true);
    FakeRetryClock clock;
    ResilientSinkOptions opts;
    opts.retry = no_jitter_policy();
    opts.retry.jitter = 0.3;
    opts.retry.jitter_seed = seed;
    ResilientSink sink(inner, opts, &clock);
    sink.on_event(make_event(1, 0, EventType::srv_req));
    return clock.sleeps();
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(ResilientSink, DeadlineAbortsBeforeMaxAttempts) {
  FlakySink inner(/*fail_first=*/100, /*retryable=*/true);
  FakeRetryClock clock;
  ResilientSinkOptions opts;
  opts.retry = no_jitter_policy();
  opts.retry.max_attempts = 100;
  // Budget admits 10 + 20 + 40 = 70 ms of backoff; the next delay (80 ms)
  // would overrun 100 ms, so the delivery gives up after 4 attempts.
  opts.retry.deadline = milliseconds(100);
  ResilientSink sink(inner, opts, &clock);

  EXPECT_THROW(sink.on_event(make_event(1, 0, EventType::srv_req)),
               fault::InjectedFault);
  EXPECT_EQ(inner.attempts, 4);
  EXPECT_EQ(sink.stats().exhausted_deliveries, 1u);
}

TEST(ResilientSink, FatalFailureIsNotRetried) {
  FlakySink inner(/*fail_first=*/1, /*retryable=*/false);
  FakeRetryClock clock;
  ResilientSinkOptions opts;
  opts.retry = no_jitter_policy();
  ResilientSink sink(inner, opts, &clock);

  EXPECT_THROW(sink.on_event(make_event(1, 0, EventType::srv_req)),
               SinkError);
  EXPECT_EQ(inner.attempts, 1);
  EXPECT_TRUE(clock.sleeps().empty());
}

TEST(ResilientSink, DropPolicyCountsAndContinues) {
  FlakySink inner(/*fail_first=*/1000, /*retryable=*/true);
  FakeRetryClock clock;
  ResilientSinkOptions opts;
  opts.policy = SinkPolicy::drop;
  opts.retry = no_jitter_policy();
  opts.retry.max_attempts = 2;
  ResilientSink sink(inner, opts, &clock);

  const std::vector<ControlEvent> batch{
      make_event(1, 0, EventType::srv_req),
      make_event(2, 1, EventType::dtch)};
  EXPECT_NO_THROW(sink.on_events(batch));
  EXPECT_EQ(sink.stats().dropped_events, 2u);
  EXPECT_EQ(sink.stats().delivered_events, 0u);
}

TEST(ResilientSink, SpillPolicyWritesRecoverableDeadLetterFile) {
  const std::string spill_path =
      ::testing::TempDir() + "/cpg_resilience_spill.csv";
  std::remove(spill_path.c_str());

  FlakySink inner(/*fail_first=*/1000, /*retryable=*/true);
  FakeRetryClock clock;
  ResilientSinkOptions opts;
  opts.policy = SinkPolicy::spill;
  opts.spill_path = spill_path;
  opts.retry = no_jitter_policy();
  opts.retry.max_attempts = 2;
  ResilientSink sink(inner, opts, &clock);

  const std::vector<ControlEvent> batch{
      make_event(10, 3, EventType::srv_req),
      make_event(20, 4, EventType::ho)};
  EXPECT_NO_THROW(sink.on_events(batch));
  sink.on_event(make_event(30, 5, EventType::s1_conn_rel));
  EXPECT_EQ(sink.stats().spilled_events, 3u);

  // The spill file leads with its magic line and is fully re-deliverable.
  std::ifstream is(spill_path);
  std::string first_line;
  ASSERT_TRUE(std::getline(is, first_line));
  EXPECT_EQ(first_line, "cpg-spill 1");

  std::vector<ControlEvent> recovered;
  CallbackSink collect([&](const ControlEvent& e) { recovered.push_back(e); });
  EXPECT_EQ(recover_spill(spill_path, collect), 3u);
  ASSERT_EQ(recovered.size(), 3u);
  EXPECT_TRUE(std::equal(batch.begin(), batch.end(), recovered.begin()));
  EXPECT_EQ(recovered[2].ue_id, 5u);
  std::remove(spill_path.c_str());
}

TEST(ResilientSink, RecoverSpillRejectsMalformedFiles) {
  const std::string path = ::testing::TempDir() + "/cpg_bad_spill.csv";
  {
    std::ofstream os(path);
    os << "cpg-spill 1\n123,4,NOT_A_TYPE\n";
  }
  NullSink sink;
  EXPECT_THROW(recover_spill(path, sink), std::runtime_error);
  {
    std::ofstream os(path);
    os << "something else\n";
  }
  EXPECT_THROW(recover_spill(path, sink), std::runtime_error);
  std::remove(path.c_str());
}

TEST(ResilientSink, SpillPolicyRequiresPath) {
  FlakySink inner(0, true);
  ResilientSinkOptions opts;
  opts.policy = SinkPolicy::spill;
  EXPECT_THROW(ResilientSink(inner, opts), std::invalid_argument);
}

TEST(Classify, MapsExceptionTypesToFailureClasses) {
  EXPECT_EQ(classify_failure(fault::InjectedFault("x", true)),
            FailureClass::retryable);
  EXPECT_EQ(classify_failure(fault::InjectedFault("x", false)),
            FailureClass::fatal);
  EXPECT_EQ(classify_failure(SinkError("x", FailureClass::retryable)),
            FailureClass::retryable);
  EXPECT_EQ(classify_failure(std::system_error(
                std::make_error_code(std::errc::io_error))),
            FailureClass::retryable);
  EXPECT_EQ(classify_failure(std::runtime_error("unknown")),
            FailureClass::fatal);
  EXPECT_EQ(classify_failure(std::logic_error("bug")), FailureClass::fatal);
}

// ---------------------------------------------------------------------------
// CsvSink write-failure detection (the silent-ENOSPC bug): a failed stream
// write must surface as a *retryable* SinkError at the batch boundary, the
// sink must rewind to the last committed row, and a supervised retry of the
// identical span must produce byte-identical output — no duplicated or lost
// rows.
// ---------------------------------------------------------------------------

// Seekable string buffer that rejects exactly one write: the first one
// attempted at or past `fail_at` bytes. Models an ENOSPC that clears by the
// time the supervisor retries (space was freed), on a device that still
// seeks — the shape CsvSink promises to recover from.
class FlakyOnceBuf final : public std::stringbuf {
 public:
  explicit FlakyOnceBuf(std::streamoff fail_at)
      : std::stringbuf(std::ios::out), fail_at_(fail_at) {}

  bool fired = false;

 protected:
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    if (should_fail()) return 0;
    return std::stringbuf::xsputn(s, n);
  }
  int_type overflow(int_type ch) override {
    if (should_fail()) return traits_type::eof();
    return std::stringbuf::overflow(ch);
  }

 private:
  bool should_fail() {
    if (fired) return false;
    const pos_type pos = seekoff(0, std::ios::cur, std::ios::out);
    if (pos == pos_type(off_type(-1)) ||
        static_cast<std::streamoff>(pos) < fail_at_) {
      return false;
    }
    fired = true;
    return true;
  }

  std::streamoff fail_at_;
};

// Write buffer with no seek support at all — CsvSink must refuse to retry
// (a blind re-delivery would duplicate whatever prefix reached the device).
class UnseekableBuf final : public std::streambuf {
 public:
  std::string written;
  bool reject = false;

 protected:
  std::streamsize xsputn(const char* s, std::streamsize n) override {
    if (reject) return 0;
    written.append(s, static_cast<std::size_t>(n));
    return n;
  }
  int_type overflow(int_type ch) override {
    if (reject || ch == traits_type::eof()) return traits_type::eof();
    written.push_back(traits_type::to_char_type(ch));
    return ch;
  }
};

std::vector<ControlEvent> csv_failure_events() {
  std::vector<ControlEvent> events;
  for (int i = 0; i < 60; ++i) {
    events.push_back(make_event(1000 + 17 * i, static_cast<UeId>(i % 3),
                                k_all_event_types[static_cast<std::size_t>(
                                    i % static_cast<int>(k_num_event_types))]));
  }
  return events;
}

StreamHeader csv_failure_header(const std::vector<DeviceType>& devices) {
  StreamHeader header;
  header.ue_devices = devices;
  header.t_begin = 0;
  header.t_end = 10'000;
  return header;
}

TEST(CsvSinkFailure, WriteFailureRewindsAndRetryIsByteIdentical) {
  const std::vector<DeviceType> devices{
      DeviceType::phone, DeviceType::connected_car, DeviceType::tablet};
  const StreamHeader header = csv_failure_header(devices);
  const std::vector<ControlEvent> events = csv_failure_events();
  const std::span<const ControlEvent> all(events);

  // Reference: the same batches through a clean stream.
  std::ostringstream ref;
  {
    CsvSink sink(ref);
    sink.on_start(header);
    sink.on_events(all.subspan(0, 25));
    sink.on_events(all.subspan(25));
    sink.on_finish();
  }
  ASSERT_GT(ref.str().size(), 400u);

  // Fail one write mid-file; ResilientSink must re-deliver the batch and the
  // bytes must come out as if nothing happened.
  FlakyOnceBuf buf(static_cast<std::streamoff>(ref.str().size() / 2));
  std::ostream out(&buf);
  CsvSink inner(out);
  FakeRetryClock clock;
  ResilientSinkOptions opts;
  opts.retry = no_jitter_policy();
  ResilientSink sink(inner, opts, &clock);
  sink.on_start(header);
  sink.on_events(all.subspan(0, 25));
  sink.on_events(all.subspan(25));
  sink.on_finish();

  EXPECT_TRUE(buf.fired);
  EXPECT_EQ(sink.stats().retries, 1u);
  EXPECT_EQ(sink.stats().dropped_events, 0u);
  EXPECT_EQ(inner.events_written(), events.size());
  EXPECT_EQ(buf.str(), ref.str());
}

TEST(CsvSinkFailure, UnseekableStreamFailureIsFatalNotDuplicated) {
  const std::vector<DeviceType> devices{DeviceType::phone};
  const StreamHeader header = csv_failure_header(devices);
  const std::vector<ControlEvent> events = csv_failure_events();

  UnseekableBuf buf;
  std::ostream out(&buf);
  CsvSink sink(out);
  sink.on_start(header);
  buf.reject = true;
  try {
    sink.on_events(std::span(events));
    FAIL() << "write failure was swallowed";
  } catch (const SinkError& e) {
    EXPECT_EQ(e.failure_class(), FailureClass::fatal);
    EXPECT_NE(std::string(e.what()).find("cannot rewind"), std::string::npos);
  }
}

TEST(CsvSinkFailure, WriteFailpointEngagesResilientSink) {
  const std::vector<DeviceType> devices{DeviceType::phone};
  const StreamHeader header = csv_failure_header(devices);
  const std::vector<ControlEvent> events = csv_failure_events();
  const std::span<const ControlEvent> all(events);

  std::ostringstream ref;
  {
    CsvSink sink(ref);
    sink.on_start(header);
    for (std::size_t i = 0; i < all.size(); i += 10) {
      sink.on_events(all.subspan(i, std::min<std::size_t>(10, all.size() - i)));
    }
    sink.on_finish();
  }

  fault::FailpointSpec spec;
  spec.action = fault::Action::error;  // retryable, like a transient ENOSPC
  spec.skip = 2;
  spec.max_fires = 2;
  fault::arm("csv_sink.write", spec);

  std::ostringstream got;
  {
    CsvSink inner(got);
    FakeRetryClock clock;
    ResilientSinkOptions opts;
    opts.retry = no_jitter_policy();
    ResilientSink sink(inner, opts, &clock);
    sink.on_start(header);
    for (std::size_t i = 0; i < all.size(); i += 10) {
      sink.on_events(all.subspan(i, std::min<std::size_t>(10, all.size() - i)));
    }
    sink.on_finish();
    EXPECT_GE(sink.stats().retries, 1u);
    EXPECT_EQ(sink.stats().dropped_events, 0u);
  }
  fault::disarm_all();

  EXPECT_EQ(got.str(), ref.str());
}

// ---------------------------------------------------------------------------
// Checkpoint file round trip
// ---------------------------------------------------------------------------

class CheckpointDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/cpg_ckpt_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    std::filesystem::remove_all(dir_);
    fault::disarm_all();
  }
  std::string dir_;
};

TEST_F(CheckpointDir, SaveLoadRoundTrip) {
  StreamCheckpoint ck;
  ck.seed = 42;
  ck.ue_counts = {10, 5, 2};
  ck.t_begin = 9 * k_ms_per_hour;
  ck.t_end = ck.t_begin + k_ms_per_hour + k_ms_per_hour / 2;
  ck.scenario_fingerprint = 0xfeedface;
  ck.num_shards = 2;
  ck.slice_ms = 60'000;
  ck.resume_slice = 7;
  ck.sink_token = "csv 1234 56 78";
  ck.shards.resize(2);
  ck.shards[0].next_seg = 11;
  gen::UeGenSnapshot g;
  g.ue_id = 3;
  g.device = DeviceType::tablet;
  g.modeled_ue = 1;
  g.rng.engine = {1, 2, 3, 4};
  g.rng.has_cached = true;
  g.rng.cached_bits = 0xdeadbeefULL;
  g.started = true;
  g.now = 123456;
  g.top_deadline = 234567;
  g.top_edge = 2;
  g.overlay_deadline[0] = 99;
  ck.shards[0].gens.push_back(g);
  ck.shards[0].gen_seg.push_back(23);
  ck.shards[1].carry.push_back(make_event(777, 3, EventType::tau));

  save_checkpoint(ck, dir_);
  const auto loaded = load_checkpoint(dir_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->seed, 42u);
  EXPECT_EQ(loaded->ue_counts, ck.ue_counts);
  EXPECT_EQ(loaded->t_begin, ck.t_begin);
  EXPECT_EQ(loaded->t_end, ck.t_end);
  EXPECT_EQ(loaded->scenario_fingerprint, 0xfeedfaceu);
  EXPECT_EQ(loaded->resume_slice, 7u);
  EXPECT_EQ(loaded->sink_token, ck.sink_token);
  ASSERT_EQ(loaded->shards.size(), 2u);
  EXPECT_EQ(loaded->shards[0].next_seg, 11u);
  ASSERT_EQ(loaded->shards[0].gens.size(), 1u);
  ASSERT_EQ(loaded->shards[0].gen_seg.size(), 1u);
  EXPECT_EQ(loaded->shards[0].gen_seg[0], 23u);
  const gen::UeGenSnapshot& lg = loaded->shards[0].gens[0];
  EXPECT_EQ(lg.ue_id, 3u);
  EXPECT_EQ(lg.device, DeviceType::tablet);
  EXPECT_EQ(lg.rng.engine, (std::array<std::uint64_t, 4>{1, 2, 3, 4}));
  EXPECT_TRUE(lg.rng.has_cached);
  EXPECT_EQ(lg.rng.cached_bits, 0xdeadbeefULL);
  EXPECT_TRUE(lg.started);
  EXPECT_EQ(lg.now, 123456);
  EXPECT_EQ(lg.top_edge, 2);
  EXPECT_EQ(lg.overlay_deadline[0], 99);
  ASSERT_EQ(loaded->shards[1].carry.size(), 1u);
  EXPECT_EQ(loaded->shards[1].carry[0], make_event(777, 3, EventType::tau));
}

TEST_F(CheckpointDir, MissingFileIsNullopt) {
  EXPECT_FALSE(load_checkpoint(dir_).has_value());
}

TEST_F(CheckpointDir, FailedSaveLeavesThePreviousCheckpointIntact) {
  // The atomic-publish contract: a save that dies mid-write (ENOSPC, crash)
  // must never clobber the checkpoint a resume depends on.
  StreamCheckpoint ck;
  ck.seed = 42;
  ck.ue_counts = {1, 0, 0};
  ck.num_shards = 1;
  ck.slice_ms = 60'000;
  ck.resume_slice = 3;
  ck.shards.resize(1);
  save_checkpoint(ck, dir_);

  fault::FailpointSpec spec;
  spec.action = fault::Action::error;
  fault::arm("io.write_file", spec);
  ck.resume_slice = 9;
  EXPECT_THROW(save_checkpoint(ck, dir_), fault::InjectedFault);
  fault::disarm_all();

  const auto loaded = load_checkpoint(dir_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->resume_slice, 3u);  // the failed save changed nothing
}

TEST_F(CheckpointDir, CorruptFileThrowsWithDiagnostic) {
  StreamCheckpoint ck;
  ck.num_shards = 1;
  ck.shards.resize(1);
  save_checkpoint(ck, dir_);
  // Truncate the file mid-way.
  const std::string path = checkpoint_path(dir_);
  std::string content;
  {
    std::ifstream is(path);
    std::ostringstream buf;
    buf << is.rdbuf();
    content = buf.str();
  }
  {
    std::ofstream os(path, std::ios::trunc);
    os << content.substr(0, content.size() / 2);
  }
  EXPECT_THROW(load_checkpoint(dir_), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Forward compatibility: files written by a newer build (or mangled beyond
// recognition) must die with one actionable line — never crash, and never
// be treated as "no checkpoint" (a silent fresh start would overwrite the
// newer run's durable state).
// ---------------------------------------------------------------------------

class CheckpointForwardCompat : public CheckpointDir {
 protected:
  void write_raw(const std::string& content) {
    std::filesystem::create_directories(dir_);
    std::ofstream os(checkpoint_path(dir_), std::ios::trunc);
    os << content;
    ASSERT_TRUE(os.good());
  }

  std::string load_error() {
    try {
      const auto ck = load_checkpoint(dir_);
      EXPECT_TRUE(ck.has_value() || !ck.has_value());
      ADD_FAILURE() << "load_checkpoint accepted the file (has_value="
                    << ck.has_value()
                    << ") instead of raising a clean error";
      return {};
    } catch (const std::runtime_error& e) {
      return e.what();
    }
  }

  void expect_actionable(const std::string& msg) {
    EXPECT_FALSE(msg.empty());
    // One line, and it names the offending file so the operator knows what
    // to remove or inspect.
    EXPECT_EQ(msg.find('\n'), std::string::npos) << msg;
    EXPECT_NE(msg.find(checkpoint_path(dir_)), std::string::npos) << msg;
  }
};

TEST_F(CheckpointForwardCompat, NewerVersionIsAOneLineActionableError) {
  write_raw("cpg-checkpoint 4\nfuture fields this build cannot know\n");
  const std::string msg = load_error();
  expect_actionable(msg);
  EXPECT_NE(msg.find("newer"), std::string::npos) << msg;
  EXPECT_NE(msg.find('4'), std::string::npos) << msg;
}

TEST_F(CheckpointForwardCompat, FarFutureVersionIsStillACleanError) {
  write_raw("cpg-checkpoint 2147483000\n");
  expect_actionable(load_error());
}

TEST_F(CheckpointForwardCompat, TruncatedHeaderIsACleanError) {
  for (const char* header : {"", "cpg-checkpo", "cpg-checkpoint",
                             "cpg-checkpoint\n"}) {
    write_raw(header);
    expect_actionable(load_error());
  }
}

TEST_F(CheckpointForwardCompat, ForeignFileIsACleanError) {
  write_raw("PK\x03\x04 this is definitely not a checkpoint");
  expect_actionable(load_error());
}

// ---------------------------------------------------------------------------
// Kill-and-resume byte identity
// ---------------------------------------------------------------------------

const model::ModelSet& ours_model() {
  static const model::ModelSet set = [] {
    model::FitOptions opts;
    opts.method = model::Method::ours;
    opts.clustering.theta_n = 30;
    return model::fit_model(testutil::small_ground_truth(200, 48.0, 11),
                            opts);
  }();
  return set;
}

gen::GenerationRequest small_request() {
  gen::GenerationRequest req;
  req.ue_counts = {60, 25, 15};
  req.start_hour = 10;
  req.duration_hours = 1.0;
  req.seed = 424;
  req.num_threads = 2;
  return req;
}

TEST_F(CheckpointForwardCompat, ResumeRunNeverSilentlyRestartsOnNewerFile) {
  write_raw("cpg-checkpoint 3\n");
  StreamOptions opts;
  opts.num_shards = 1;
  opts.num_threads = 1;
  opts.checkpoint.dir = dir_;
  opts.resume = true;
  NullSink sink;
  // The run must refuse to start (a fresh start would clobber the newer
  // build's checkpoint), not crash and not generate from slice 0.
  EXPECT_THROW(stream_generate(ours_model(), small_request(), opts, sink),
               std::runtime_error);
}

StreamOptions checkpointed_options(const std::string& dir) {
  StreamOptions opts;
  opts.num_shards = 4;
  opts.num_threads = 2;
  opts.slice_ms = 5 * k_ms_per_minute;  // 12 slices over 1 h
  opts.checkpoint.dir = dir;
  opts.checkpoint.interval_slices = 3;
  return opts;
}

// Emulates a durable sink across "process death": the event store outlives
// the sink (like a file on disk outlives the process). checkpoint_save
// makes the store durable and returns its size; checkpoint_resume truncates
// it back to the token, exactly as CsvSink truncates its .tmp files.
class DurableStoreSink final : public EventSink, public CheckpointParticipant {
 public:
  explicit DurableStoreSink(std::vector<ControlEvent>& store)
      : store_(store) {}

  void on_start(const StreamHeader&) override { store_.clear(); }
  void on_event(const ControlEvent& e) override { store_.push_back(e); }
  void on_events(std::span<const ControlEvent> es) override {
    store_.insert(store_.end(), es.begin(), es.end());
  }

  std::string checkpoint_save() override {
    return std::to_string(store_.size());
  }
  void checkpoint_resume(const std::string& token,
                         const StreamHeader&) override {
    store_.resize(std::stoull(token));
  }

 private:
  std::vector<ControlEvent>& store_;
};

std::vector<ControlEvent> reference_events() {
  static const std::vector<ControlEvent> events = [] {
    std::vector<ControlEvent> store;
    DurableStoreSink sink(store);
    StreamOptions opts;
    opts.num_shards = 4;
    opts.num_threads = 2;
    opts.slice_ms = 5 * k_ms_per_minute;
    stream_generate(ours_model(), small_request(), opts, sink);
    return store;
  }();
  return events;
}

TEST_F(CheckpointDir, KillAndResumeIsByteIdenticalAcrossKillPoints) {
  const std::vector<ControlEvent>& want = reference_events();
  ASSERT_GT(want.size(), 100u);

  // Kill at the failpoint-chosen slice: before the first checkpoint (kill
  // at slice 1 -> resume is a fresh start), just past a checkpoint (slice
  // 4 -> resume from 3), at a checkpoint slice (6), and late (10 ->
  // resume from 9).
  for (const std::uint64_t kill_slice : {1u, 4u, 6u, 10u}) {
    std::vector<ControlEvent> store;
    DurableStoreSink sink(store);
    std::filesystem::remove_all(dir_);

    fault::FailpointSpec kill;
    kill.action = fault::Action::fatal;
    kill.skip = kill_slice;  // fire on the (kill_slice+1)-th delivered slice
    kill.max_fires = 1;
    fault::arm("stream.deliver_slice", kill);

    EXPECT_THROW(stream_generate(ours_model(), small_request(),
                                 checkpointed_options(dir_), sink),
                 fault::InjectedFault)
        << "kill_slice=" << kill_slice;
    fault::disarm_all();

    StreamOptions resume_opts = checkpointed_options(dir_);
    resume_opts.resume = true;
    const StreamStats stats =
        stream_generate(ours_model(), small_request(), resume_opts, sink);
    if (kill_slice >= 4) {
      EXPECT_GT(stats.start_slice, 0u) << "kill_slice=" << kill_slice;
    }
    ASSERT_EQ(store.size(), want.size()) << "kill_slice=" << kill_slice;
    EXPECT_TRUE(std::equal(store.begin(), store.end(), want.begin()))
        << "kill_slice=" << kill_slice;
    // A completed run retires its checkpoint.
    EXPECT_FALSE(load_checkpoint(dir_).has_value());
  }
}

TEST_F(CheckpointDir, SurvivesRepeatedKills) {
  const std::vector<ControlEvent>& want = reference_events();
  std::vector<ControlEvent> store;
  DurableStoreSink sink(store);

  for (const std::uint64_t skip : {4u, 3u}) {
    fault::FailpointSpec kill;
    kill.action = fault::Action::fatal;
    kill.skip = skip;
    kill.max_fires = 1;
    fault::arm("stream.deliver_slice", kill);
    StreamOptions opts = checkpointed_options(dir_);
    opts.resume = true;  // harmless on the first run (no checkpoint yet)
    EXPECT_THROW(stream_generate(ours_model(), small_request(), opts, sink),
                 fault::InjectedFault);
    fault::disarm_all();
  }
  StreamOptions opts = checkpointed_options(dir_);
  opts.resume = true;
  stream_generate(ours_model(), small_request(), opts, sink);
  ASSERT_EQ(store.size(), want.size());
  EXPECT_TRUE(std::equal(store.begin(), store.end(), want.begin()));
}

TEST_F(CheckpointDir, ResumeRejectsMismatchedFingerprint) {
  std::vector<ControlEvent> store;
  DurableStoreSink sink(store);
  fault::FailpointSpec kill;
  kill.action = fault::Action::fatal;
  kill.skip = 5;
  kill.max_fires = 1;
  fault::arm("stream.deliver_slice", kill);
  EXPECT_THROW(stream_generate(ours_model(), small_request(),
                               checkpointed_options(dir_), sink),
               fault::InjectedFault);
  fault::disarm_all();

  gen::GenerationRequest other = small_request();
  other.seed = 425;
  StreamOptions resume_opts = checkpointed_options(dir_);
  resume_opts.resume = true;
  try {
    stream_generate(ours_model(), other, resume_opts, sink);
    FAIL() << "expected fingerprint mismatch";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("seed"), std::string::npos);
  }
}

TEST_F(CheckpointDir, WorkerFailpointUnwindsCleanly) {
  // A fault in a shard worker must shut the pipeline down and surface the
  // fault — no deadlock, no silent truncation.
  std::vector<ControlEvent> store;
  DurableStoreSink sink(store);
  fault::FailpointSpec kill;
  kill.action = fault::Action::fatal;
  kill.skip = 3;
  kill.max_fires = 1;
  fault::arm("stream.shard_slice", kill);
  EXPECT_THROW(stream_generate(ours_model(), small_request(),
                               checkpointed_options(dir_), sink),
               fault::InjectedFault);
}

TEST_F(CheckpointDir, CsvSinkKillAndResumeProducesIdenticalFiles) {
  const std::string ref_prefix = dir_ + "/ref";
  const std::string run_prefix = dir_ + "/run";
  std::filesystem::create_directories(dir_);

  const auto read_file = [](const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
  };

  {
    CsvSink ref(ref_prefix);
    StreamOptions opts = checkpointed_options(dir_ + "/ck_ref");
    opts.checkpoint.dir.clear();  // plain run
    stream_generate(ours_model(), small_request(), opts, ref);
  }
  ASSERT_TRUE(std::filesystem::exists(ref_prefix + "_events.csv"));
  // The tmp staging files were renamed away.
  EXPECT_FALSE(std::filesystem::exists(ref_prefix + "_events.csv.tmp"));

  {
    CsvSink run(run_prefix);
    fault::FailpointSpec kill;
    kill.action = fault::Action::fatal;
    kill.skip = 7;
    kill.max_fires = 1;
    fault::arm("stream.deliver_slice", kill);
    EXPECT_THROW(stream_generate(ours_model(), small_request(),
                                 checkpointed_options(dir_ + "/ck"), run),
                 fault::InjectedFault);
    fault::disarm_all();
  }
  // The killed run left only staging files.
  EXPECT_TRUE(std::filesystem::exists(run_prefix + "_events.csv.tmp"));
  EXPECT_FALSE(std::filesystem::exists(run_prefix + "_events.csv"));

  {
    CsvSink run(run_prefix);
    StreamOptions opts = checkpointed_options(dir_ + "/ck");
    opts.resume = true;
    const StreamStats stats =
        stream_generate(ours_model(), small_request(), opts, run);
    EXPECT_EQ(stats.start_slice, 6u);
  }
  EXPECT_EQ(read_file(run_prefix + "_events.csv"),
            read_file(ref_prefix + "_events.csv"));
  EXPECT_EQ(read_file(run_prefix + "_ues.csv"),
            read_file(ref_prefix + "_ues.csv"));
}

TEST_F(CheckpointDir, GracefulStopFinalizesFilesAndResumeRestagesThem) {
  const std::string ref_prefix = dir_ + "/ref";
  const std::string run_prefix = dir_ + "/run";
  std::filesystem::create_directories(dir_);

  const auto read_file = [](const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream buf;
    buf << is.rdbuf();
    return buf.str();
  };

  {
    CsvSink ref(ref_prefix);
    StreamOptions opts = checkpointed_options(dir_ + "/ck_ref");
    opts.checkpoint.dir.clear();  // plain run
    stream_generate(ours_model(), small_request(), opts, ref);
  }

  {
    CsvSink run(run_prefix);
    StreamOptions opts = checkpointed_options(dir_ + "/ck");
    std::uint64_t polls = 0;
    opts.stop_check = [&polls] { return ++polls >= 4; };
    const StreamStats stats =
        stream_generate(ours_model(), small_request(), opts, run);
    EXPECT_TRUE(stats.stopped);
    EXPECT_LT(stats.slices, 12u);
  }
  // Unlike a kill, a graceful stop finalizes the prefix: the staging files
  // were renamed to their final names, and the checkpoint was kept.
  EXPECT_TRUE(std::filesystem::exists(run_prefix + "_events.csv"));
  EXPECT_TRUE(std::filesystem::exists(run_prefix + "_ues.csv"));
  EXPECT_FALSE(std::filesystem::exists(run_prefix + "_events.csv.tmp"));
  EXPECT_FALSE(std::filesystem::exists(run_prefix + "_ues.csv.tmp"));
  ASSERT_TRUE(load_checkpoint(dir_ + "/ck").has_value());

  {
    // A fresh sink resuming must move the finalized files back into
    // staging (the restage path) before truncating to the token.
    CsvSink run(run_prefix);
    StreamOptions opts = checkpointed_options(dir_ + "/ck");
    opts.resume = true;
    const StreamStats stats =
        stream_generate(ours_model(), small_request(), opts, run);
    EXPECT_GT(stats.start_slice, 0u);
    EXPECT_FALSE(stats.stopped);
  }
  EXPECT_EQ(read_file(run_prefix + "_events.csv"),
            read_file(ref_prefix + "_events.csv"));
  EXPECT_EQ(read_file(run_prefix + "_ues.csv"),
            read_file(ref_prefix + "_ues.csv"));
  // The completed resume retired the checkpoint.
  EXPECT_FALSE(load_checkpoint(dir_ + "/ck").has_value());
}

TEST_F(CheckpointDir, ResumeWithoutCheckpointStartsFresh) {
  std::vector<ControlEvent> store;
  DurableStoreSink sink(store);
  StreamOptions opts = checkpointed_options(dir_);
  opts.resume = true;  // no checkpoint file exists
  const StreamStats stats =
      stream_generate(ours_model(), small_request(), opts, sink);
  EXPECT_EQ(stats.start_slice, 0u);
  EXPECT_EQ(store.size(), reference_events().size());
}

// ---------------------------------------------------------------------------
// Spatial kill-and-resume: the cell column survives process death too
// ---------------------------------------------------------------------------

struct CellRow {
  TimeMs t;
  UeId ue;
  EventType type;
  std::uint32_t cell;
  bool operator==(const CellRow&) const = default;
};

// DurableStoreSink with the cell column: captures the annotated stream via
// the columnar hook and truncates back to the checkpoint token on resume.
class DurableCellStoreSink final : public EventSink,
                                   public CheckpointParticipant {
 public:
  explicit DurableCellStoreSink(std::vector<CellRow>& store)
      : store_(store) {}

  void on_start(const StreamHeader&) override { store_.clear(); }
  void on_event(const ControlEvent&) override {
    FAIL() << "unpaced delivery must use the columnar path";
  }
  void on_event_columns(const EventColumnsView& cols) override {
    ASSERT_TRUE(cols.has_cells() || cols.empty());
    for (std::size_t i = 0; i < cols.n; ++i) {
      store_.push_back({cols.ts[i], cols.ue[i], cols.type[i], cols.cell[i]});
    }
  }

  std::string checkpoint_save() override {
    return std::to_string(store_.size());
  }
  void checkpoint_resume(const std::string& token,
                         const StreamHeader& header) override {
    // Resume re-announces the grid: a spatial run must still be spatial.
    EXPECT_NE(header.spatial, nullptr);
    store_.resize(std::stoull(token));
  }

 private:
  std::vector<CellRow>& store_;
};

const spatial::SpatialConfig& resume_spatial_config() {
  static const spatial::SpatialConfig cfg =
      spatial::load_spatial("grid:10x10x250");
  return cfg;
}

TEST_F(CheckpointDir, SpatialKillAndResumeKeepsCellsByteIdentical) {
  // Reference: one uninterrupted spatial run.
  std::vector<CellRow> want;
  {
    DurableCellStoreSink sink(want);
    StreamOptions opts = checkpointed_options(dir_);
    opts.checkpoint.dir.clear();
    opts.spatial = &resume_spatial_config();
    stream_generate(ours_model(), small_request(), opts, sink);
  }
  ASSERT_GT(want.size(), 100u);

  for (const std::uint64_t kill_slice : {1u, 4u, 6u}) {
    std::vector<CellRow> store;
    DurableCellStoreSink sink(store);
    std::filesystem::remove_all(dir_);

    fault::FailpointSpec kill;
    kill.action = fault::Action::fatal;
    kill.skip = kill_slice;
    kill.max_fires = 1;
    fault::arm("stream.deliver_slice", kill);

    StreamOptions opts = checkpointed_options(dir_);
    opts.spatial = &resume_spatial_config();
    EXPECT_THROW(stream_generate(ours_model(), small_request(), opts, sink),
                 fault::InjectedFault)
        << "kill_slice=" << kill_slice;
    fault::disarm_all();

    StreamOptions resume_opts = checkpointed_options(dir_);
    resume_opts.spatial = &resume_spatial_config();
    resume_opts.resume = true;
    stream_generate(ours_model(), small_request(), resume_opts, sink);
    ASSERT_EQ(store.size(), want.size()) << "kill_slice=" << kill_slice;
    EXPECT_TRUE(std::equal(store.begin(), store.end(), want.begin()))
        << "kill_slice=" << kill_slice;
  }
}

TEST_F(CheckpointDir, ResumeRejectsChangedSpatialConfig) {
  std::vector<CellRow> store;
  DurableCellStoreSink sink(store);
  fault::FailpointSpec kill;
  kill.action = fault::Action::fatal;
  kill.skip = 5;
  kill.max_fires = 1;
  fault::arm("stream.deliver_slice", kill);
  StreamOptions opts = checkpointed_options(dir_);
  opts.spatial = &resume_spatial_config();
  EXPECT_THROW(stream_generate(ours_model(), small_request(), opts, sink),
               fault::InjectedFault);
  fault::disarm_all();

  // A different grid (and a dropped spatial layer) must both refuse to
  // resume: splicing coordinates from two geometries would corrupt the
  // trace silently.
  const spatial::SpatialConfig other = spatial::load_spatial("grid:9x9x250");
  StreamOptions changed = checkpointed_options(dir_);
  changed.spatial = &other;
  changed.resume = true;
  EXPECT_THROW(
      stream_generate(ours_model(), small_request(), changed, sink),
      std::runtime_error);

  StreamOptions dropped = checkpointed_options(dir_);
  dropped.resume = true;
  EXPECT_THROW(
      stream_generate(ours_model(), small_request(), dropped, sink),
      std::runtime_error);
}

}  // namespace
}  // namespace cpg::stream
