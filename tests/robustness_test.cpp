// Failure-injection / robustness tests: the pipeline must stay well-defined
// on hostile input — protocol-violating traces (real MME logs are noisy),
// degenerate populations, and pathological model contents.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "generator/traffic_generator.h"
#include "model/aggregate.h"
#include "model/fit.h"
#include "statemachine/replay.h"
#include "test_util.h"

namespace cpg {
namespace {

// A trace full of protocol violations: the aggregate strawman's output.
Trace violating_trace() {
  const Trace sample = testutil::small_ground_truth(150, 24.0, 111);
  const auto aggregate = model::fit_aggregate(sample);
  model::AggregateRequest req;
  req.ue_counts = {200, 80, 40};
  req.start_hour = 12;
  req.duration_hours = 2.0;
  req.seed = 5;
  return model::generate_aggregate(aggregate, req);
}

TEST(Robustness, FitToleratesProtocolViolations) {
  // The lenient replayer resynchronizes; fitting must not throw and must
  // produce a usable model.
  const Trace dirty = violating_trace();
  ASSERT_GT(sm::count_violations(sm::lte_two_level_spec(), dirty), 0u);

  model::FitOptions opts;
  opts.clustering.theta_n = 40;
  const auto set = model::fit_model(dirty, opts);

  gen::GenerationRequest req;
  req.ue_counts = {150, 60, 30};
  req.start_hour = 12;
  req.seed = 9;
  const Trace regenerated = gen::generate_trace(set, req);
  ASSERT_FALSE(regenerated.empty());
  // A model fitted on dirty data still generates *clean* traffic: the
  // two-level machine is enforced at generation time.
  EXPECT_EQ(sm::count_violations(sm::lte_two_level_spec(), regenerated), 0u);
}

TEST(Robustness, FitOnSingleUe) {
  Trace tiny;
  const UeId u = tiny.add_ue(DeviceType::phone);
  tiny.add_event(1'000, u, EventType::srv_req);
  tiny.add_event(5'000, u, EventType::s1_conn_rel);
  tiny.add_event(60'000, u, EventType::srv_req);
  tiny.add_event(66'000, u, EventType::s1_conn_rel);
  tiny.finalize();
  const auto set = model::fit_model(tiny, {});
  gen::GenerationRequest req;
  req.ue_counts = {10, 0, 0};
  req.start_hour = 0;
  const Trace t = gen::generate_trace(set, req);
  EXPECT_EQ(sm::count_violations(sm::lte_two_level_spec(), t), 0u);
}

TEST(Robustness, FitOnEmptyTrace) {
  Trace empty;
  empty.finalize();
  const auto set = model::fit_model(empty, {});
  gen::GenerationRequest req;
  req.ue_counts = {10, 10, 10};
  const Trace t = gen::generate_trace(set, req);
  // No data, no traffic — but no crash either.
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.num_ues(), 30u);
}

TEST(Robustness, FitOnSilentUes) {
  // UEs registered but with zero events.
  Trace silent;
  for (int i = 0; i < 20; ++i) silent.add_ue(DeviceType::tablet);
  silent.finalize();
  const auto set = model::fit_model(silent, {});
  gen::GenerationRequest req;
  req.ue_counts = {0, 0, 20};
  const Trace t = gen::generate_trace(set, req);
  EXPECT_TRUE(t.empty());
}

TEST(Robustness, GenerationAcrossMidnight) {
  model::FitOptions opts;
  opts.clustering.theta_n = 40;
  const auto set =
      model::fit_model(testutil::small_ground_truth(150, 48.0, 112), opts);
  gen::GenerationRequest req;
  req.ue_counts = {80, 30, 15};
  req.start_hour = 23;
  req.duration_hours = 2.0;  // crosses midnight
  req.seed = 3;
  const Trace t = gen::generate_trace(set, req);
  ASSERT_FALSE(t.empty());
  EXPECT_GE(t.begin_time(), 23 * k_ms_per_hour);
  EXPECT_LT(t.end_time(), 25 * k_ms_per_hour);
  EXPECT_EQ(sm::count_violations(sm::lte_two_level_spec(), t), 0u);
}

TEST(Robustness, SingleDeviceTypePopulation) {
  // The fitted trace has all three devices; the request asks for one.
  model::FitOptions opts;
  opts.clustering.theta_n = 40;
  const auto set =
      model::fit_model(testutil::small_ground_truth(150, 24.0, 113), opts);
  gen::GenerationRequest req;
  req.ue_counts = {0, 500, 0};
  req.start_hour = 18;
  req.seed = 5;
  const Trace t = gen::generate_trace(set, req);
  ASSERT_FALSE(t.empty());
  for (const ControlEvent& e : t.events()) {
    EXPECT_EQ(t.device(e.ue_id), DeviceType::connected_car);
  }
}

TEST(Robustness, RequestedDeviceAbsentFromModel) {
  // Fit on phones only; ask for tablets: silence, not a crash.
  Trace phones_only;
  const UeId u = phones_only.add_ue(DeviceType::phone);
  phones_only.add_event(1'000, u, EventType::srv_req);
  phones_only.add_event(9'000, u, EventType::s1_conn_rel);
  phones_only.finalize();
  const auto set = model::fit_model(phones_only, {});
  gen::GenerationRequest req;
  req.ue_counts = {0, 0, 25};
  const Trace t = gen::generate_trace(set, req);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.num_ues(), 25u);
}

TEST(Robustness, ZeroDurationWindowRejected) {
  model::FitOptions opts;
  const auto set =
      model::fit_model(testutil::small_ground_truth(60, 12.0, 114), opts);
  gen::GenerationRequest req;
  req.ue_counts = {30, 10, 5};
  req.duration_hours = 0.0;
  try {
    gen::generate_trace(set, req);
    FAIL() << "zero duration must be rejected";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duration_hours"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace cpg
