// Shared helpers for tests: small deterministic ground-truth traces.
#pragma once

#include "synthetic/workload.h"

namespace cpg::testutil {

inline Trace small_ground_truth(std::size_t total_ues = 150,
                                double hours = 48.0,
                                std::uint64_t seed = 7) {
  auto opts = synthetic::default_population(total_ues);
  opts.duration_hours = hours;
  opts.seed = seed;
  opts.num_threads = 2;
  return synthetic::generate_ground_truth(opts);
}

}  // namespace cpg::testutil
