#include <gtest/gtest.h>

#include "stats/descriptive.h"

namespace cpg::stats {
namespace {

TEST(Descriptive, MeanVarianceStddev) {
  const double xs[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
}

TEST(Descriptive, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
  const double one[] = {3.0};
  EXPECT_DOUBLE_EQ(mean(one), 3.0);
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
}

TEST(Quantile, Interpolation) {
  const double xs[] = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0 / 3.0), 2.0);
}

TEST(Quantile, UnsortedInputHandled) {
  const double xs[] = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(Quantile, SortedVariantThrowsOnEmpty) {
  EXPECT_THROW(quantile_sorted({}, 0.5), std::invalid_argument);
}

TEST(BoxStats, FiveNumberSummary) {
  const double xs[] = {1.0, 2.0, 3.0, 4.0, 5.0};
  const BoxStats b = box_stats(xs);
  EXPECT_DOUBLE_EQ(b.min, 1.0);
  EXPECT_DOUBLE_EQ(b.q1, 2.0);
  EXPECT_DOUBLE_EQ(b.median, 3.0);
  EXPECT_DOUBLE_EQ(b.q3, 4.0);
  EXPECT_DOUBLE_EQ(b.max, 5.0);
  EXPECT_DOUBLE_EQ(b.mean, 3.0);
  EXPECT_EQ(b.n, 5u);
}

TEST(BoxStats, EmptySampleIsZeroed) {
  const BoxStats b = box_stats({});
  EXPECT_EQ(b.n, 0u);
  EXPECT_DOUBLE_EQ(b.max, 0.0);
}

TEST(Summary, Percentiles) {
  std::vector<double> xs(100);
  for (int i = 0; i < 100; ++i) xs[i] = i + 1;  // 1..100
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p95, 95.05, 1e-9);
  EXPECT_NEAR(s.p99, 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
}

}  // namespace
}  // namespace cpg::stats
