// End-to-end integration test of the paper's validation pipeline
// (§8.1 at reduced scale): fit all four methods on a ground-truth trace,
// synthesize, and verify that the paper's qualitative results hold —
// "Ours" beats the baselines macroscopically and microscopically.
#include <gtest/gtest.h>

#include "generator/traffic_generator.h"
#include "model/fit.h"
#include "test_util.h"
#include "validation/macro.h"
#include "validation/micro.h"

namespace cpg {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fit_trace_ = new Trace(testutil::small_ground_truth(400, 72.0, 41));
    // A disjoint "real" trace: same population behaviour, different seed.
    real_trace_ = new Trace(testutil::small_ground_truth(400, 72.0, 42));
    hour_ = validation::busy_hour(*real_trace_);

    for (model::Method m : {model::Method::base, model::Method::b1,
                            model::Method::b2, model::Method::ours}) {
      model::FitOptions opts;
      opts.method = m;
      opts.clustering.theta_n = 40;
      models_[static_cast<int>(m)] =
          new model::ModelSet(model::fit_model(*fit_trace_, opts));
    }
  }

  static void TearDownTestSuite() {
    delete fit_trace_;
    delete real_trace_;
    for (auto*& m : models_) {
      delete m;
      m = nullptr;
    }
  }

  static Trace synthesize(model::Method m, std::uint64_t seed = 77) {
    gen::GenerationRequest req;
    req.ue_counts = {252, 100, 48};  // match the ground-truth mix
    req.start_hour = hour_;
    req.duration_hours = 1.0;
    req.seed = seed;
    req.num_threads = 2;
    return gen::generate_trace(*models_[static_cast<int>(m)], req);
  }

  static Trace hour_slice(const Trace& t) {
    Trace out;
    for (std::size_t u = 0; u < t.num_ues(); ++u) {
      out.add_ue(t.device(static_cast<UeId>(u)));
    }
    // Take the busy hour of day 1 of the real trace.
    const TimeMs lo = k_ms_per_day + hour_ * k_ms_per_hour;
    const auto [a, b] = t.time_range(lo, lo + k_ms_per_hour);
    for (std::size_t i = a; i < b; ++i) out.add_event(t.events()[i]);
    out.finalize();
    return out;
  }

  static Trace* fit_trace_;
  static Trace* real_trace_;
  static int hour_;
  static std::array<model::ModelSet*, 4> models_;
};

Trace* PipelineTest::fit_trace_ = nullptr;
Trace* PipelineTest::real_trace_ = nullptr;
int PipelineTest::hour_ = 0;
std::array<model::ModelSet*, 4> PipelineTest::models_{};

TEST_F(PipelineTest, OursBreakdownBeatsBase) {
  const Trace real = hour_slice(*real_trace_);
  const auto real_bd = validation::breakdown_of(real);
  const auto ours_bd = validation::breakdown_of(synthesize(model::Method::ours));
  const auto base_bd = validation::breakdown_of(synthesize(model::Method::base));
  const auto ours_diff = validation::diff_breakdowns(real_bd, ours_bd);
  const auto base_diff = validation::diff_breakdowns(real_bd, base_bd);
  double ours_total = 0.0, base_total = 0.0;
  for (DeviceType d : k_all_device_types) {
    ours_total += ours_diff.max_abs(d);
    base_total += base_diff.max_abs(d);
    // Paper: within ~5 points for every device type.
    EXPECT_LT(ours_diff.max_abs(d), 0.10) << to_string(d);
  }
  // Across the population, Ours is strictly more faithful than Base.
  EXPECT_LT(ours_total, base_total);
}

TEST_F(PipelineTest, BaseEmitsHoInIdleOursDoesNot) {
  const auto ours_bd = validation::breakdown_of(synthesize(model::Method::ours));
  const auto base_bd = validation::breakdown_of(synthesize(model::Method::base));
  for (DeviceType d : k_all_device_types) {
    EXPECT_EQ(ours_bd.counts[index_of(d)][5], 0u) << to_string(d);
    // Base has no way to tie HO to CONNECTED; a visible share of its events
    // are protocol-violating HO-in-IDLE (paper Table 4 row "HO (IDLE)").
    EXPECT_GT(base_bd.fraction(d, 5), 0.005) << to_string(d);
  }
}

TEST_F(PipelineTest, OursSojournsBeatB2) {
  // Table 5's right half: sojourn-time CDFs in CONNECTED/IDLE are closer to
  // the real trace under empirical CDFs than under fitted Poisson.
  const Trace real = hour_slice(*real_trace_);
  const Trace ours = synthesize(model::Method::ours);
  const Trace b2 = synthesize(model::Method::b2);
  const auto& spec = sm::lte_two_level_spec();
  for (UeState s : {UeState::connected, UeState::idle}) {
    const auto real_s =
        validation::state_sojourns(real, spec, DeviceType::phone, s);
    const auto ours_s =
        validation::state_sojourns(ours, spec, DeviceType::phone, s);
    const auto b2_s =
        validation::state_sojourns(b2, spec, DeviceType::phone, s);
    ASSERT_FALSE(real_s.empty());
    ASSERT_FALSE(ours_s.empty());
    ASSERT_FALSE(b2_s.empty());
    const double d_ours = validation::max_y_distance(real_s, ours_s);
    const double d_b2 = validation::max_y_distance(real_s, b2_s);
    EXPECT_LT(d_ours, d_b2) << to_string(s);
  }
}

TEST_F(PipelineTest, OursEventCountsCloseToReal) {
  const Trace real = hour_slice(*real_trace_);
  const Trace ours = synthesize(model::Method::ours);
  for (EventType e : {EventType::srv_req, EventType::s1_conn_rel}) {
    const auto real_c =
        validation::events_per_ue(real, DeviceType::phone, e);
    const auto ours_c =
        validation::events_per_ue(ours, DeviceType::phone, e);
    const double d = validation::max_y_distance(real_c, ours_c);
    EXPECT_LT(d, 0.35) << to_string(e);
  }
}

TEST_F(PipelineTest, AllMethodsLabelEventsWithOwners) {
  for (model::Method m : {model::Method::base, model::Method::b1,
                          model::Method::b2, model::Method::ours}) {
    const Trace t = synthesize(m);
    ASSERT_FALSE(t.empty()) << to_string(m);
    for (const ControlEvent& e : t.events()) {
      ASSERT_LT(e.ue_id, t.num_ues());
    }
  }
}

}  // namespace
}  // namespace cpg
