#include <gtest/gtest.h>

#include <cmath>

#include "stats/variance_time.h"

namespace cpg::stats {
namespace {

TEST(VarianceTime, PoissonHasSlopeMinusOne) {
  // For a Poisson process, var(k_i)/mean(k_i)^2 decays as 1/M on the
  // variance-time plot (slope -1 in log-log).
  Rng rng(21);
  const TimeMs t1 = 4'000'000;  // ~66 minutes
  const auto arrivals = poisson_arrivals(5.0, 0, t1, rng);
  const double scales[] = {1.0, 10.0, 100.0};
  const auto curve = variance_time_curve(arrivals, 0, t1, scales);
  ASSERT_EQ(curve.size(), 3u);
  // Ratio of consecutive normalized variances ~ 10 for a 10x scale step.
  const double r1 = curve[0].normalized_variance / curve[1].normalized_variance;
  const double r2 = curve[1].normalized_variance / curve[2].normalized_variance;
  EXPECT_NEAR(std::log10(r1), 1.0, 0.35);
  EXPECT_NEAR(std::log10(r2), 1.0, 0.45);
}

TEST(VarianceTime, OnOffProcessIsBurstierThanPoisson) {
  // ON/OFF modulated Poisson with the same mean rate has higher normalized
  // variance at scales comparable to the burst period.
  Rng rng(22);
  const TimeMs t1 = 4'000'000;
  std::vector<TimeMs> bursty;
  TimeMs t = 0;
  bool on = true;
  while (t < t1) {
    const TimeMs period = on ? 20'000 : 80'000;  // 20 s on / 80 s off
    if (on) {
      const auto part = poisson_arrivals(25.0, t, t + period, rng);
      bursty.insert(bursty.end(), part.begin(), part.end());
    }
    t += period;
    on = !on;
  }
  Rng rng2(23);
  const auto poisson = poisson_arrivals(5.0, 0, t1, rng2);

  const double scales[] = {10.0, 50.0};
  const auto vb = variance_time_curve(bursty, 0, t1, scales);
  const auto vp = variance_time_curve(poisson, 0, t1, scales);
  ASSERT_EQ(vb.size(), 2u);
  ASSERT_EQ(vp.size(), 2u);
  EXPECT_GT(vb[0].normalized_variance, 3.0 * vp[0].normalized_variance);
  EXPECT_GT(vb[1].normalized_variance, 3.0 * vp[1].normalized_variance);
}

TEST(VarianceTime, SkipsScalesWithTooFewWindows) {
  std::vector<TimeMs> arrivals{100, 200, 300};
  const double scales[] = {1.0, 1000.0};  // only 10 s of data
  const auto curve = variance_time_curve(arrivals, 0, 10'000, scales);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_DOUBLE_EQ(curve[0].scale_s, 1.0);
}

TEST(VarianceTime, IgnoresOutOfRangeArrivals) {
  std::vector<TimeMs> arrivals{-50, 100, 200, 99'999'999};
  const double scales[] = {1.0};
  const auto curve = variance_time_curve(arrivals, 0, 60'000, scales);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_EQ(curve[0].windows, 60u);
}

TEST(VarianceTime, ThrowsOnEmptyInterval) {
  std::vector<TimeMs> arrivals{1};
  const double scales[] = {1.0};
  EXPECT_THROW(variance_time_curve(arrivals, 10, 10, scales),
               std::invalid_argument);
}

TEST(PoissonArrivals, RateIsRespected) {
  Rng rng(24);
  const auto arrivals = poisson_arrivals(10.0, 0, 1'000'000, rng);
  // 10 events/s over 1000 s -> ~10000 events.
  EXPECT_NEAR(static_cast<double>(arrivals.size()), 10'000.0, 400.0);
  // Sorted and in range.
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_GE(arrivals[i], arrivals[i - 1]);
  }
  EXPECT_GE(arrivals.front(), 0);
  EXPECT_LT(arrivals.back(), 1'000'000);
}

TEST(PoissonArrivals, ZeroRateGivesNothing) {
  Rng rng(25);
  EXPECT_TRUE(poisson_arrivals(0.0, 0, 1000, rng).empty());
}

TEST(DefaultScales, AreLogSpaced1To1000) {
  const auto scales = default_vt_scales();
  ASSERT_FALSE(scales.empty());
  EXPECT_DOUBLE_EQ(scales.front(), 1.0);
  EXPECT_DOUBLE_EQ(scales.back(), 1000.0);
  for (std::size_t i = 1; i < scales.size(); ++i) {
    EXPECT_GT(scales[i], scales[i - 1]);
  }
}

}  // namespace
}  // namespace cpg::stats
