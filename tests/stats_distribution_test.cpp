#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "stats/distribution.h"

namespace cpg::stats {
namespace {

// --- parameterized quantile/cdf inverse property over all families --------

struct FamilyCase {
  const char* label;
  std::shared_ptr<Distribution> dist;
};

class DistributionInverse : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(DistributionInverse, QuantileIsInverseOfCdf) {
  const Distribution& d = *GetParam().dist;
  for (double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double x = d.quantile(p);
    EXPECT_NEAR(d.cdf(x), p, 2e-3) << GetParam().label << " p=" << p;
  }
}

TEST_P(DistributionInverse, CdfIsMonotone) {
  const Distribution& d = *GetParam().dist;
  double prev = -1.0;
  for (double x = 0.0; x <= 50.0; x += 0.5) {
    const double f = d.cdf(x);
    EXPECT_GE(f, prev) << GetParam().label;
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
}

TEST_P(DistributionInverse, SampleMeanMatchesAnalyticMean) {
  const Distribution& d = *GetParam().dist;
  if (!std::isfinite(d.mean())) GTEST_SKIP();
  Rng rng(99);
  double sum = 0.0;
  constexpr int n = 40000;
  for (int i = 0; i < n; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / n, d.mean(), 0.08 * d.mean() + 0.01) << GetParam().label;
}

TEST_P(DistributionInverse, CloneIsEquivalent) {
  const Distribution& d = *GetParam().dist;
  const auto copy = d.clone();
  for (double x : {0.1, 1.0, 3.0, 10.0}) {
    EXPECT_DOUBLE_EQ(copy->cdf(x), d.cdf(x)) << GetParam().label;
  }
}

std::vector<FamilyCase> all_families() {
  std::vector<double> sample;
  Rng rng(5);
  for (int i = 0; i < 4000; ++i) sample.push_back(rng.lognormal(0.5, 0.8));
  return {
      {"exponential", std::make_shared<Exponential>(0.5)},
      {"pareto", std::make_shared<Pareto>(1.0, 2.5)},
      {"weibull", std::make_shared<Weibull>(1.7, 3.0)},
      {"lognormal", std::make_shared<LogNormal>(0.3, 0.9)},
      {"empirical", std::make_shared<Empirical>(sample)},
      {"scaled",
       std::make_shared<Scaled>(std::make_shared<Exponential>(1.0), 2.5)},
  };
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, DistributionInverse,
                         ::testing::ValuesIn(all_families()),
                         [](const auto& info) {
                           return std::string(info.param.label);
                         });

// --- family specifics ------------------------------------------------------

TEST(Exponential, KnownValues) {
  Exponential e(2.0);
  EXPECT_DOUBLE_EQ(e.cdf(0.0), 0.0);
  EXPECT_NEAR(e.cdf(0.5), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(e.mean(), 0.5);
  EXPECT_THROW(Exponential(0.0), std::invalid_argument);
  EXPECT_THROW(Exponential(-1.0), std::invalid_argument);
}

TEST(Pareto, SupportStartsAtScale) {
  Pareto p(2.0, 3.0);
  EXPECT_DOUBLE_EQ(p.cdf(1.9), 0.0);
  EXPECT_DOUBLE_EQ(p.cdf(2.0), 0.0);
  EXPECT_GT(p.cdf(2.1), 0.0);
  EXPECT_NEAR(p.mean(), 3.0, 1e-12);
}

TEST(Pareto, InfiniteMeanWhenAlphaBelowOne) {
  Pareto p(1.0, 0.9);
  EXPECT_TRUE(std::isinf(p.mean()));
}

TEST(Weibull, ShapeOneIsExponential) {
  Weibull w(1.0, 2.0);
  Exponential e(0.5);
  for (double x : {0.1, 0.5, 1.0, 4.0}) {
    EXPECT_NEAR(w.cdf(x), e.cdf(x), 1e-12);
  }
}

TEST(LogNormal, MedianIsExpMu) {
  LogNormal ln(1.2, 0.7);
  EXPECT_NEAR(ln.cdf(std::exp(1.2)), 0.5, 1e-9);
  EXPECT_NEAR(ln.quantile(0.5), std::exp(1.2), 1e-6);
}

TEST(Empirical, StepCdf) {
  const double vals[] = {1.0, 2.0, 3.0, 4.0};
  Empirical e(vals);
  EXPECT_DOUBLE_EQ(e.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e.cdf(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e.cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(e.cdf(100.0), 1.0);
  EXPECT_DOUBLE_EQ(e.mean(), 2.5);
  EXPECT_DOUBLE_EQ(e.min(), 1.0);
  EXPECT_DOUBLE_EQ(e.max(), 4.0);
}

TEST(Empirical, QuantileInterpolates) {
  const double vals[] = {0.0, 10.0};
  Empirical e(vals);
  EXPECT_DOUBLE_EQ(e.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(e.quantile(1.0), 10.0);
}

TEST(Empirical, RejectsEmptySample) {
  EXPECT_THROW(Empirical(std::vector<double>{}, false),
               std::invalid_argument);
}

TEST(Empirical, SortsUnsortedInput) {
  const double vals[] = {3.0, 1.0, 2.0};
  Empirical e(vals);
  EXPECT_DOUBLE_EQ(e.min(), 1.0);
  EXPECT_DOUBLE_EQ(e.max(), 3.0);
}

TEST(Empirical, ScaledToMean) {
  const double vals[] = {1.0, 3.0};
  Empirical e(vals);
  const Empirical scaled = e.scaled_to_mean(8.0);
  EXPECT_DOUBLE_EQ(scaled.mean(), 8.0);
  EXPECT_DOUBLE_EQ(scaled.min(), 4.0);
  EXPECT_DOUBLE_EQ(scaled.max(), 12.0);
}

TEST(Tcplib, ShapeHasUnitMeanAndHeavyTail) {
  const Empirical& shape = tcplib_shape();
  EXPECT_NEAR(shape.mean(), 1.0, 1e-9);
  // Heavy upper tail: p99 well above the mean, median well below.
  EXPECT_GT(shape.quantile(0.99), 5.0);
  EXPECT_LT(shape.quantile(0.5), 0.5);
}

TEST(Tcplib, FitMatchesSampleMean) {
  std::vector<double> sample{2.0, 4.0, 6.0};
  const Empirical fitted = fit_tcplib(sample);
  EXPECT_NEAR(fitted.mean(), 4.0, 1e-9);
}

TEST(Scaled, ScalesQuantilesAndMean) {
  auto inner = std::make_shared<Exponential>(1.0);
  Scaled s(inner, 0.5);
  EXPECT_DOUBLE_EQ(s.mean(), 0.5);
  EXPECT_NEAR(s.quantile(0.9), 0.5 * inner->quantile(0.9), 1e-12);
  EXPECT_NEAR(s.cdf(1.0), inner->cdf(2.0), 1e-12);
  EXPECT_THROW(Scaled(nullptr, 1.0), std::invalid_argument);
  EXPECT_THROW(Scaled(inner, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace cpg::stats
