#include <gtest/gtest.h>

#include "model/aggregate.h"
#include "statemachine/replay.h"
#include "test_util.h"

namespace cpg::model {
namespace {

const Trace& sample() {
  static const Trace t = testutil::small_ground_truth(200, 24.0, 95);
  return t;
}

AggregateRequest request_for(std::size_t ues) {
  AggregateRequest req;
  req.ue_counts = {ues * 63 / 100, ues / 4, ues * 12 / 100};
  req.start_hour = 18;
  req.duration_hours = 1.0;
  req.seed = 3;
  return req;
}

TEST(Aggregate, FitRequiresFinalizedTrace) {
  Trace t;
  const UeId u = t.add_ue(DeviceType::phone);
  t.add_event(10, u, EventType::tau);
  t.add_event(5, u, EventType::tau);
  EXPECT_THROW(fit_aggregate(t), std::logic_error);
}

TEST(Aggregate, DeviceSharesSumToOne) {
  const auto m = fit_aggregate(sample());
  for (std::size_t t = 0; t < k_num_event_types; ++t) {
    double sum = 0.0;
    for (double s : m.device_share[t]) sum += s;
    EXPECT_NEAR(sum, 1.0, 1e-9) << t;
  }
  EXPECT_EQ(m.fitted_ues, sample().num_ues());
}

TEST(Aggregate, GeneratesEventsInWindow) {
  const auto m = fit_aggregate(sample());
  const Trace t = generate_aggregate(m, request_for(500));
  ASSERT_FALSE(t.empty());
  for (const ControlEvent& e : t.events()) {
    EXPECT_GE(e.t_ms, 18 * k_ms_per_hour);
    EXPECT_LT(e.t_ms, 19 * k_ms_per_hour);
    EXPECT_LT(e.ue_id, t.num_ues());
  }
}

TEST(Aggregate, ViolatesStateMachines) {
  // Paper §3.2.1 limitation (1): the aggregate model cannot respect per-UE
  // event dependence.
  const auto m = fit_aggregate(sample());
  const Trace t = generate_aggregate(m, request_for(500));
  const auto violations =
      sm::count_violations(sm::lte_two_level_spec(), t);
  EXPECT_GT(violations, t.num_events() / 10);
}

TEST(Aggregate, VolumeDoesNotScaleWithPopulation) {
  // Paper §3.2.1 limitation (3): rates are pinned to the fitted population.
  const auto m = fit_aggregate(sample());
  const Trace small = generate_aggregate(m, request_for(500));
  const Trace big = generate_aggregate(m, request_for(5000));
  const double ratio = static_cast<double>(big.num_events()) /
                       static_cast<double>(small.num_events());
  EXPECT_LT(ratio, 1.5);  // a per-UE model would give ~10x
}

TEST(Aggregate, EmpiricalFamilyVariant) {
  const auto m = fit_aggregate(sample(), AggregateFamily::empirical);
  const Trace t = generate_aggregate(m, request_for(300));
  EXPECT_FALSE(t.empty());
}

TEST(Aggregate, AggregateVolumeTracksSample) {
  // The one thing the aggregate model gets right: total busy-hour volume at
  // the fitted population size.
  const auto m = fit_aggregate(sample());
  const Trace synth = generate_aggregate(m, request_for(200));
  const auto [lo, hi] = sample().time_range(18 * k_ms_per_hour,
                                            19 * k_ms_per_hour);
  const double real_events = static_cast<double>(hi - lo);
  ASSERT_GT(real_events, 0.0);
  const double ratio = static_cast<double>(synth.num_events()) / real_events;
  EXPECT_GT(ratio, 0.4);
  EXPECT_LT(ratio, 2.5);
}

}  // namespace
}  // namespace cpg::model
