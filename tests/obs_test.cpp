// Tests for the runtime observability layer (src/obs/): instrument
// semantics, registry registration rules, Prometheus / JSON exposition
// formats, the periodic SnapshotReporter, and the cpg_mcn_* instruments a
// simulation registers end-to-end.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "mcn/simulator.h"
#include "obs/exporters.h"
#include "obs/merge.h"
#include "obs/metrics.h"
#include "obs/reporter.h"

namespace cpg::obs {
namespace {

TEST(Instruments, CounterAndGaugeSemantics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);

  Gauge g;
  g.add(10);
  g.sub(3);
  EXPECT_EQ(g.value(), 7);
  g.set(-5);
  EXPECT_EQ(g.value(), -5);
}

TEST(Instruments, HistogramBucketsObservations) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1
  h.observe(1.0);    // <= 1 (inclusive upper edge)
  h.observe(2.0);    // <= 10
  h.observe(150.0);  // +Inf
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 153.5);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket(3), 1u);  // the implicit +Inf bucket
}

TEST(Instruments, HistogramRejectsNonIncreasingBounds) {
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({}), std::invalid_argument);
}

TEST(Instruments, ExponentialBuckets) {
  const auto b = exponential_buckets(10.0, 2.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 10.0);
  EXPECT_DOUBLE_EQ(b[3], 80.0);
  EXPECT_THROW(exponential_buckets(0.0, 2.0, 4), std::invalid_argument);
  EXPECT_THROW(exponential_buckets(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(exponential_buckets(1.0, 2.0, 0), std::invalid_argument);
}

TEST(Registry, ReRegistrationReturnsTheSameInstrument) {
  Registry reg;
  Counter& a = reg.counter("cpg_test_total", "help");
  Counter& b = reg.counter("cpg_test_total", "help");
  EXPECT_EQ(&a, &b);
  Counter& c = reg.counter("cpg_test_total", "help", {{"shard", "0"}});
  EXPECT_NE(&a, &c);
  EXPECT_EQ(reg.num_series(), 2u);

  Histogram& h1 = reg.histogram("cpg_test_us", "help", {1.0, 2.0});
  Histogram& h2 = reg.histogram("cpg_test_us", "help", {1.0, 2.0});
  EXPECT_EQ(&h1, &h2);
}

TEST(Registry, KindAndBoundsMismatchesThrow) {
  Registry reg;
  reg.counter("cpg_x_total", "help");
  EXPECT_THROW(reg.gauge("cpg_x_total", "help"), std::invalid_argument);
  reg.histogram("cpg_x_us", "help", {1.0, 2.0});
  EXPECT_THROW(reg.histogram("cpg_x_us", "help", {1.0, 3.0}),
               std::invalid_argument);
}

TEST(Registry, InvalidNamesAndLabelKeysThrow) {
  Registry reg;
  EXPECT_THROW(reg.counter("", "help"), std::invalid_argument);
  EXPECT_THROW(reg.counter("9bad", "help"), std::invalid_argument);
  EXPECT_THROW(reg.counter("has space", "help"), std::invalid_argument);
  EXPECT_THROW(reg.counter("has-dash", "help"), std::invalid_argument);
  EXPECT_THROW(reg.counter("cpg_ok", "help", {{"bad key", "v"}}),
               std::invalid_argument);
  reg.counter("_ok_total", "leading underscore is valid");
}

TEST(Registry, SnapshotPreservesRegistrationOrder) {
  Registry reg;
  reg.counter("cpg_b_total", "second family registered first");
  reg.gauge("cpg_a", "first alphabetically, second in order");
  reg.counter("cpg_b_total", "x", {{"k", "v"}});
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "cpg_b_total");
  EXPECT_EQ(snap[1].name, "cpg_a");
  ASSERT_EQ(snap[0].series.size(), 2u);
  EXPECT_TRUE(snap[0].series[0].labels.empty());
  ASSERT_EQ(snap[0].series[1].labels.size(), 1u);
  EXPECT_EQ(snap[0].series[1].labels[0].first, "k");
}

TEST(Registry, ConcurrentCounterUpdatesAreExact) {
  Registry reg;
  Counter& c = reg.counter("cpg_conc_total", "hammered from four threads");
  constexpr int k_threads = 4;
  constexpr std::uint64_t k_incs = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < k_threads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < k_incs; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), k_threads * k_incs);
}

TEST(Prometheus, TextExpositionFormat) {
  Registry reg;
  reg.counter("cpg_events_total", "Total events").inc(7);
  reg.gauge("cpg_depth", "Queue depth", {{"shard", "2"}}).set(-3);
  Histogram& h =
      reg.histogram("cpg_wait_us", "Wait time", {10.0, 100.0});
  h.observe(5.0);
  h.observe(50.0);
  h.observe(500.0);

  std::ostringstream os;
  write_prometheus(reg, os);
  const std::string text = os.str();

  EXPECT_NE(text.find("# HELP cpg_events_total Total events\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE cpg_events_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("cpg_events_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cpg_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("cpg_depth{shard=\"2\"} -3\n"), std::string::npos);
  // Histogram buckets are cumulative; the +Inf bucket equals _count.
  EXPECT_NE(text.find("# TYPE cpg_wait_us histogram\n"), std::string::npos);
  EXPECT_NE(text.find("cpg_wait_us_bucket{le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("cpg_wait_us_bucket{le=\"100\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("cpg_wait_us_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("cpg_wait_us_sum 555\n"), std::string::npos);
  EXPECT_NE(text.find("cpg_wait_us_count 3\n"), std::string::npos);
}

TEST(Prometheus, LabelValuesAreEscaped) {
  Registry reg;
  reg.counter("cpg_esc_total", "h",
              {{"path", "a\\b\"c\nd"}});
  std::ostringstream os;
  write_prometheus(reg, os);
  EXPECT_NE(os.str().find("cpg_esc_total{path=\"a\\\\b\\\"c\\nd\"} 0\n"),
            std::string::npos);
}

TEST(Json, ExportShape) {
  Registry reg;
  reg.counter("cpg_j_total", "help").inc(3);
  Histogram& h = reg.histogram("cpg_j_us", "help", {1.0});
  h.observe(0.5);
  std::ostringstream os;
  write_json(reg, os);
  const std::string text = os.str();
  EXPECT_EQ(text.front(), '{');
  EXPECT_NE(text.find("\"name\":\"cpg_j_total\""), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(text.find("\"value\":3"), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(text.find("\"buckets\":[{\"le\":\"1\",\"count\":1},"
                      "{\"le\":\"+Inf\",\"count\":0}]"),
            std::string::npos);
}

TEST(Reporter, EmitsPeriodicallyAndOnceMoreOnStop) {
  Registry reg;
  Counter& c = reg.counter("cpg_r_total", "help");
  std::atomic<std::uint64_t> emits{0};
  std::atomic<std::uint64_t> last_value{0};
  SnapshotReporter reporter(
      reg, std::chrono::milliseconds(20), [&](const Registry& r) {
        ++emits;
        for (const FamilySnapshot& f : r.snapshot()) {
          if (f.name == "cpg_r_total") last_value = f.series[0].counter;
        }
      });
  c.inc(5);
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_GE(emits.load(), 2u);  // several periodic emits happened
  const std::uint64_t before_stop = emits.load();
  reporter.stop();
  EXPECT_GT(emits.load(), 0u);
  EXPECT_GE(emits.load(), before_stop);  // stop added the final snapshot
  EXPECT_EQ(last_value.load(), 5u);      // final emit sees the end state
  EXPECT_EQ(reporter.snapshots(), emits.load());
  reporter.stop();  // idempotent
  EXPECT_EQ(reporter.snapshots(), emits.load());
}

TEST(Reporter, RejectsBadArguments) {
  Registry reg;
  EXPECT_THROW(SnapshotReporter(reg, std::chrono::milliseconds(0),
                                [](const Registry&) {}),
               std::invalid_argument);
  EXPECT_THROW(
      SnapshotReporter(reg, std::chrono::milliseconds(10), nullptr),
      std::invalid_argument);
}

TEST(Reporter, FileWriterPublishesCompleteSnapshots) {
  const std::string path = ::testing::TempDir() + "obs_reporter_out.prom";
  Registry reg;
  reg.counter("cpg_f_total", "help").inc(9);
  {
    SnapshotReporter reporter(
        reg, std::chrono::milliseconds(10),
        SnapshotReporter::file_writer(path, ExportFormat::prometheus));
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }  // destruction stops and publishes the final snapshot
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("cpg_f_total 9\n"), std::string::npos);
  std::remove(path.c_str());
}

TEST(McnMetrics, SimulationRegistersAndCountsProcedures) {
  Trace trace;
  const UeId u = trace.add_ue(DeviceType::phone);
  trace.add_event(1000, u, EventType::atch);
  trace.add_event(5000, u, EventType::srv_req);
  trace.add_event(9000, u, EventType::dtch);
  trace.finalize();

  Registry reg;
  mcn::SimulationConfig cfg;
  cfg.metrics = &reg;
  const mcn::SimulationResult result = mcn::simulate(trace, cfg);
  ASSERT_EQ(result.procedures, 3u);

  std::uint64_t procedures = 0, messages = 0, latency_count = 0;
  std::int64_t in_flight = -1;
  bool saw_mme_label = false;
  for (const FamilySnapshot& f : reg.snapshot()) {
    for (const SeriesSnapshot& s : f.series) {
      if (f.name == "cpg_mcn_procedures_total") {
        procedures = s.counter;
      } else if (f.name == "cpg_mcn_station_messages_total") {
        messages += s.counter;
        for (const auto& [k, v] : s.labels) {
          if (k == "station" && v == "MME") saw_mme_label = true;
        }
      } else if (f.name == "cpg_mcn_procedure_latency_us") {
        latency_count = s.hist.count;
      } else if (f.name == "cpg_mcn_in_flight_jobs") {
        in_flight = s.gauge;
      }
    }
  }
  EXPECT_EQ(procedures, result.procedures);
  EXPECT_EQ(messages, result.messages);
  EXPECT_EQ(latency_count, result.procedures);
  EXPECT_EQ(in_flight, 0);  // everything drained by finish()
  EXPECT_TRUE(saw_mme_label);  // station labels carry NF names
}

// ---------------------------------------------------------------------------
// Snapshot serialization + cross-process merge (obs/merge.h)

Registry& sample_registry(Registry& reg) {
  reg.counter("cpg_t_total", "a counter").inc(5);
  reg.counter("cpg_t_total", "a counter", {{"shard", "1"}}).inc(7);
  reg.gauge("cpg_t_level", "a gauge").set(-3);
  auto& h = reg.histogram("cpg_t_wait", "a histogram", {0.5, 2.0, 8.0});
  h.observe(0.1);
  h.observe(1.7);
  h.observe(100.0);
  h.observe(0.3333333333333333);  // exercises full-precision sums
  return reg;
}

TEST(Merge, SerializeParseRoundTripIsExact) {
  Registry reg;
  const auto families = sample_registry(reg).snapshot();
  const std::string text = serialize_snapshot(families);
  const auto parsed = parse_snapshot(text);
  ASSERT_EQ(parsed.size(), families.size());
  for (std::size_t i = 0; i < families.size(); ++i) {
    EXPECT_EQ(parsed[i].name, families[i].name);
    EXPECT_EQ(parsed[i].help, families[i].help);
    EXPECT_EQ(parsed[i].kind, families[i].kind);
    ASSERT_EQ(parsed[i].series.size(), families[i].series.size());
    for (std::size_t j = 0; j < families[i].series.size(); ++j) {
      const SeriesSnapshot& a = parsed[i].series[j];
      const SeriesSnapshot& b = families[i].series[j];
      EXPECT_EQ(a.labels, b.labels);
      EXPECT_EQ(a.counter, b.counter);
      EXPECT_EQ(a.gauge, b.gauge);
      EXPECT_EQ(a.hist.bounds, b.hist.bounds);
      EXPECT_EQ(a.hist.buckets, b.hist.buckets);
      EXPECT_EQ(a.hist.count, b.hist.count);
      // Hexfloat sums make the round trip bit-exact, not approximate.
      EXPECT_EQ(a.hist.sum, b.hist.sum);
    }
  }
}

TEST(Merge, MalformedSnapshotsAreCleanErrors) {
  EXPECT_THROW(parse_snapshot("obsreg 99\n"), std::runtime_error);
  EXPECT_THROW(parse_snapshot("not a snapshot"), std::runtime_error);
  EXPECT_THROW(parse_snapshot("obsreg 1\nseries before family\n"),
               std::runtime_error);
}

TEST(Merge, FoldsCountersGaugesAndHistograms) {
  Registry rank_a;
  Registry rank_b;
  sample_registry(rank_a);
  sample_registry(rank_b);
  Registry coord;
  merge_snapshot(coord, rank_a.snapshot());
  merge_snapshot(coord, rank_b.snapshot());
  for (const FamilySnapshot& f : coord.snapshot()) {
    if (f.name == "cpg_t_total") {
      for (const SeriesSnapshot& s : f.series) {
        EXPECT_EQ(s.counter, s.labels.empty() ? 10u : 14u);
      }
    } else if (f.name == "cpg_t_level") {
      EXPECT_EQ(f.series.at(0).gauge, -6);
    } else if (f.name == "cpg_t_wait") {
      EXPECT_EQ(f.series.at(0).hist.count, 8u);
    }
  }
}

TEST(Merge, ExtraLabelsKeepPerRankResolution) {
  Registry rank_a;
  Registry rank_b;
  sample_registry(rank_a);
  sample_registry(rank_b);
  Registry coord;
  merge_snapshot(coord, rank_a.snapshot(), {{"rank", "0"}});
  merge_snapshot(coord, rank_b.snapshot(), {{"rank", "1"}});
  std::size_t rank_series = 0;
  for (const FamilySnapshot& f : coord.snapshot()) {
    if (f.name != "cpg_t_total") continue;
    for (const SeriesSnapshot& s : f.series) {
      for (const auto& [k, v] : s.labels) {
        if (k == "rank") ++rank_series;
      }
      EXPECT_TRUE(s.counter == 5 || s.counter == 7);  // never summed
    }
  }
  EXPECT_EQ(rank_series, 4u);  // 2 series x 2 ranks, kept distinct
}

TEST(Merge, HistogramAbsorbRequiresMatchingBounds) {
  Registry a;
  auto& h = a.histogram("cpg_t_lat", "h", {1.0, 2.0});
  h.observe(1.5);
  HistogramSnapshot snap;
  snap.bounds = {1.0, 4.0};  // different ladder
  snap.buckets = {0, 1, 0};
  snap.count = 1;
  EXPECT_THROW(h.absorb(snap), std::invalid_argument);

  Registry b;
  b.histogram("cpg_t_lat", "h", {1.0, 4.0}).observe(0.5);
  Registry coord;
  merge_snapshot(coord, a.snapshot());
  EXPECT_ANY_THROW(merge_snapshot(coord, b.snapshot()));

  // Matching bounds fold per-bucket.
  Registry c;
  auto& hc = c.histogram("cpg_t_lat", "h", {1.0, 2.0});
  hc.observe(0.2);
  hc.observe(10.0);
  merge_snapshot(coord, c.snapshot());
  for (const FamilySnapshot& f : coord.snapshot()) {
    if (f.name != "cpg_t_lat") continue;
    EXPECT_EQ(f.series.at(0).hist.count, 3u);
    EXPECT_EQ(f.series.at(0).hist.buckets.at(0), 1u);  // 0.2
    EXPECT_EQ(f.series.at(0).hist.buckets.at(1), 1u);  // 1.5
    EXPECT_EQ(f.series.at(0).hist.buckets.at(2), 1u);  // 10.0 (+Inf)
  }
}

// ---------------------------------------------------------------------------
// Snapshot-vs-mutation races: these exist to run under TSan (the tsan CI
// preset builds and runs the whole test suite instrumented). Writers hammer
// every instrument kind while readers snapshot, serialize and merge — any
// unsynchronized access in Registry::snapshot, Histogram::absorb or the
// merge path is a TSan report.

TEST(Races, SnapshotWhileAllInstrumentKindsMutate) {
  Registry reg;
  auto& c = reg.counter("cpg_r_total", "c");
  auto& g = reg.gauge("cpg_r_level", "g");
  auto& h = reg.histogram("cpg_r_wait", "h", exponential_buckets(1, 2, 6));
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        c.inc(1);
        g.add(2);
        g.add(-1);
        h.observe(3.7);
      }
    });
  }
  // Registration of new series during snapshots is part of the contract.
  std::thread registrar([&] {
    for (int i = 0; i < 200; ++i) {
      reg.counter("cpg_r_total", "c", {{"shard", std::to_string(i % 8)}})
          .inc(1);
    }
  });
  for (int i = 0; i < 200; ++i) {
    const auto snap = reg.snapshot();
    ASSERT_GE(snap.size(), 3u);
    // Serialization + merge read the snapshot concurrently with writers.
    Registry scratch;
    merge_snapshot(scratch, parse_snapshot(serialize_snapshot(snap)));
  }
  registrar.join();
  stop.store(true);
  for (auto& t : writers) t.join();
  const auto final_snap = reg.snapshot();
  std::uint64_t total = 0;
  for (const FamilySnapshot& f : final_snap) {
    if (f.name != "cpg_r_total") continue;
    for (const SeriesSnapshot& s : f.series) total += s.counter;
  }
  EXPECT_GT(total, 0u);
}

TEST(Races, AbsorbWhileTheTargetHistogramMutates) {
  Registry reg;
  auto& h = reg.histogram("cpg_r_lat", "h", {1.0, 10.0, 100.0});
  HistogramSnapshot snap;
  snap.bounds = {1.0, 10.0, 100.0};
  snap.buckets = {1, 2, 3, 4};
  snap.count = 10;
  snap.sum = 314.0;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) h.observe(5.0);
  });
  for (int i = 0; i < 1000; ++i) h.absorb(snap);
  stop.store(true);
  writer.join();
  EXPECT_GE(h.count(), 10000u);
}

// ---------------------------------------------------------------------------
// Label-cardinality guard
// ---------------------------------------------------------------------------

TEST(Registry, SeriesLimitFoldsOverflowLabelsIntoOther) {
  Registry reg;
  reg.set_series_limit(4);
  // Four distinct label values register normally...
  for (int c = 0; c < 4; ++c) {
    reg.counter("cpg_spatial_cell_events_total", "per-cell events",
                {{"cell", std::to_string(c)}})
        .inc();
  }
  // ...and everything past the cap shares one "other" series.
  for (int c = 4; c < 40; ++c) {
    reg.counter("cpg_spatial_cell_events_total", "per-cell events",
                {{"cell", std::to_string(c)}})
        .inc();
  }

  std::size_t series = 0;
  std::uint64_t total = 0, other = 0;
  bool other_seen = false;
  for (const FamilySnapshot& fam : reg.snapshot()) {
    if (fam.name != "cpg_spatial_cell_events_total") continue;
    for (const SeriesSnapshot& s : fam.series) {
      ++series;
      total += s.counter;
      for (const auto& [k, v] : s.labels) {
        if (k == "cell" && v == "other") {
          other_seen = true;
          other = s.counter;
        }
      }
    }
  }
  // The fold itself occupies one slot past the cap, never more: the family
  // stays bounded no matter how many label values arrive.
  EXPECT_EQ(series, 5u);
  EXPECT_TRUE(other_seen);
  EXPECT_EQ(other, 36u);
  EXPECT_EQ(total, 40u);  // no increments are lost to the fold

  // Series registered before the cap keep resolving to their own slot.
  reg.counter("cpg_spatial_cell_events_total", "per-cell events",
              {{"cell", "2"}})
      .inc(9);
  for (const FamilySnapshot& fam : reg.snapshot()) {
    if (fam.name != "cpg_spatial_cell_events_total") continue;
    for (const SeriesSnapshot& s : fam.series) {
      for (const auto& [k, v] : s.labels) {
        if (k == "cell" && v == "2") EXPECT_EQ(s.counter, 10u);
      }
    }
  }
}

TEST(Registry, SeriesLimitAppliesPerFamilyAndSparesUnlabeled) {
  Registry reg;
  reg.set_series_limit(2);
  reg.counter("fam_a", "a", {{"x", "1"}}).inc();
  reg.counter("fam_a", "a", {{"x", "2"}}).inc();
  reg.counter("fam_a", "a", {{"x", "3"}}).inc();  // folds
  // A second family gets its own budget, and unlabeled metrics are exempt.
  reg.counter("fam_b", "b", {{"x", "1"}}).inc();
  reg.counter("fam_c", "c").inc();
  std::size_t a = 0, b = 0;
  for (const FamilySnapshot& fam : reg.snapshot()) {
    if (fam.name == "fam_a") a = fam.series.size();
    if (fam.name == "fam_b") b = fam.series.size();
  }
  EXPECT_EQ(a, 3u);  // 2 real + "other"
  EXPECT_EQ(b, 1u);
}

TEST(Registry, SeriesLimitRejectsZero) {
  Registry reg;
  EXPECT_THROW(reg.set_series_limit(0), std::invalid_argument);
}

}  // namespace
}  // namespace cpg::obs
