#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "core/rng.h"
#include "core/time_utils.h"
#include "core/trace.h"
#include "core/types.h"

namespace cpg {
namespace {

// --- types ------------------------------------------------------------------

TEST(Types, EventNamesRoundTrip) {
  for (EventType e : k_all_event_types) {
    const auto parsed = parse_event_type(to_string(e));
    ASSERT_TRUE(parsed.has_value()) << to_string(e);
    EXPECT_EQ(*parsed, e);
  }
  EXPECT_FALSE(parse_event_type("NOT_AN_EVENT").has_value());
}

TEST(Types, DeviceNamesRoundTrip) {
  for (DeviceType d : k_all_device_types) {
    const auto parsed = parse_device_type(to_string(d));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, d);
  }
  EXPECT_FALSE(parse_device_type("toaster").has_value());
}

TEST(Types, TopStateNamesRoundTrip) {
  for (TopState s : k_all_top_states) {
    const auto parsed = parse_top_state(to_string(s));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, s);
  }
}

TEST(Types, SubStateNamesRoundTrip) {
  for (SubState s : k_all_sub_states) {
    const auto parsed = parse_sub_state(to_string(s));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, s);
  }
}

TEST(Types, FiveGMappingMatchesPaperTable2) {
  EXPECT_EQ(to_5g(EventType::atch), FiveGEventType::register_);
  EXPECT_EQ(to_5g(EventType::dtch), FiveGEventType::deregister);
  EXPECT_EQ(to_5g(EventType::srv_req), FiveGEventType::srv_req);
  EXPECT_EQ(to_5g(EventType::s1_conn_rel), FiveGEventType::an_rel);
  EXPECT_EQ(to_5g(EventType::ho), FiveGEventType::ho);
  // TAU has no 5G counterpart.
  EXPECT_FALSE(to_5g(EventType::tau).has_value());
}

// --- time utils ---------------------------------------------------------------

TEST(TimeUtils, HourOfDay) {
  EXPECT_EQ(hour_of_day(0), 0);
  EXPECT_EQ(hour_of_day(k_ms_per_hour - 1), 0);
  EXPECT_EQ(hour_of_day(k_ms_per_hour), 1);
  EXPECT_EQ(hour_of_day(23 * k_ms_per_hour), 23);
  EXPECT_EQ(hour_of_day(k_ms_per_day), 0);
  EXPECT_EQ(hour_of_day(k_ms_per_day + 5 * k_ms_per_hour), 5);
}

TEST(TimeUtils, DayAndHourIndex) {
  EXPECT_EQ(day_of(0), 0);
  EXPECT_EQ(day_of(k_ms_per_day - 1), 0);
  EXPECT_EQ(day_of(k_ms_per_day), 1);
  EXPECT_EQ(hour_index(3 * k_ms_per_hour + 5), 3);
  EXPECT_EQ(hour_start(3), 3 * k_ms_per_hour);
}

TEST(TimeUtils, SecondsConversionRoundTrip) {
  EXPECT_EQ(seconds_to_ms(1.5), 1500);
  EXPECT_DOUBLE_EQ(ms_to_seconds(2500), 2.5);
  EXPECT_EQ(seconds_to_ms(ms_to_seconds(123456)), 123456);
}

// --- rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, StreamsAreIndependent) {
  Rng a(7, 0), b(7, 1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(1);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_index(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, ExponentialMean) {
  Rng rng(3);
  double sum = 0.0;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng rng(4);
  double sum = 0.0, sq = 0.0;
  constexpr int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 2.0, 0.07);
  EXPECT_NEAR(sq / n - mean * mean, 9.0, 0.35);
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(5);
  const double w[] = {1.0, 3.0, 6.0};
  std::array<int, 3> counts{};
  constexpr int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(w)];
  EXPECT_NEAR(counts[0] / double(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / double(n), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / double(n), 0.6, 0.02);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

// --- trace ---------------------------------------------------------------------

TEST(Trace, RegistersUesWithDenseIds) {
  Trace t;
  EXPECT_EQ(t.add_ue(DeviceType::phone), 0u);
  EXPECT_EQ(t.add_ue(DeviceType::tablet), 1u);
  EXPECT_EQ(t.add_ue(DeviceType::phone), 2u);
  EXPECT_EQ(t.num_ues(), 3u);
  EXPECT_EQ(t.num_ues_of(DeviceType::phone), 2u);
  EXPECT_EQ(t.num_ues_of(DeviceType::tablet), 1u);
  EXPECT_EQ(t.num_ues_of(DeviceType::connected_car), 0u);
  EXPECT_EQ(t.device(1), DeviceType::tablet);
}

TEST(Trace, RejectsUnregisteredUe) {
  Trace t;
  t.add_ue(DeviceType::phone);
  EXPECT_THROW(t.add_event(0, 5, EventType::atch), std::out_of_range);
}

TEST(Trace, FinalizeSortsEvents) {
  Trace t;
  const UeId u = t.add_ue(DeviceType::phone);
  t.add_event(300, u, EventType::s1_conn_rel);
  t.add_event(100, u, EventType::atch);
  t.add_event(200, u, EventType::srv_req);
  EXPECT_FALSE(t.finalized());
  t.finalize();
  ASSERT_TRUE(t.finalized());
  ASSERT_EQ(t.num_events(), 3u);
  EXPECT_EQ(t.events()[0].t_ms, 100);
  EXPECT_EQ(t.events()[1].t_ms, 200);
  EXPECT_EQ(t.events()[2].t_ms, 300);
  EXPECT_EQ(t.begin_time(), 100);
  EXPECT_EQ(t.end_time(), 300);
}

TEST(Trace, TimeRangeIsHalfOpen) {
  Trace t;
  const UeId u = t.add_ue(DeviceType::phone);
  for (TimeMs ms : {10, 20, 30, 40}) t.add_event(ms, u, EventType::tau);
  t.finalize();
  const auto [lo, hi] = t.time_range(20, 40);
  EXPECT_EQ(lo, 1u);
  EXPECT_EQ(hi, 3u);
  const auto [all_lo, all_hi] = t.time_range(0, 1000);
  EXPECT_EQ(all_lo, 0u);
  EXPECT_EQ(all_hi, 4u);
}

TEST(Trace, MergeOffsetsUeIds) {
  Trace a;
  const UeId a0 = a.add_ue(DeviceType::phone);
  a.add_event(1, a0, EventType::atch);

  Trace b;
  const UeId b0 = b.add_ue(DeviceType::tablet);
  b.add_event(2, b0, EventType::srv_req);

  const UeId offset = a.merge(b);
  EXPECT_EQ(offset, 1u);
  a.finalize();
  EXPECT_EQ(a.num_ues(), 2u);
  EXPECT_EQ(a.device(1), DeviceType::tablet);
  EXPECT_EQ(a.events()[1].ue_id, 1u);
}

TEST(Trace, CountByDeviceEvent) {
  Trace t;
  const UeId p = t.add_ue(DeviceType::phone);
  const UeId c = t.add_ue(DeviceType::connected_car);
  t.add_event(1, p, EventType::srv_req);
  t.add_event(2, p, EventType::srv_req);
  t.add_event(3, c, EventType::ho);
  t.finalize();
  const auto counts = t.count_by_device_event();
  EXPECT_EQ(counts[index_of(DeviceType::phone)][index_of(EventType::srv_req)],
            2u);
  EXPECT_EQ(
      counts[index_of(DeviceType::connected_car)][index_of(EventType::ho)],
      1u);
  EXPECT_EQ(counts[index_of(DeviceType::tablet)][index_of(EventType::tau)],
            0u);
}

TEST(Trace, GroupByUePreservesOrderAndOwnership) {
  Trace t;
  const UeId u0 = t.add_ue(DeviceType::phone);
  const UeId u1 = t.add_ue(DeviceType::phone);
  t.add_event(5, u1, EventType::srv_req);
  t.add_event(1, u0, EventType::atch);
  t.add_event(9, u0, EventType::srv_req);
  t.finalize();
  const auto groups = t.group_by_ue();
  ASSERT_EQ(groups.size(), 2u);
  ASSERT_EQ(groups[0].size(), 2u);
  EXPECT_EQ(groups[0][0].t_ms, 1);
  EXPECT_EQ(groups[0][1].t_ms, 9);
  ASSERT_EQ(groups[1].size(), 1u);
  EXPECT_EQ(groups[1][0].ue_id, u1);
}

TEST(Trace, GroupByUeDeviceFilter) {
  Trace t;
  const UeId p = t.add_ue(DeviceType::phone);
  const UeId c = t.add_ue(DeviceType::connected_car);
  const UeId p2 = t.add_ue(DeviceType::phone);
  t.add_event(1, p, EventType::srv_req);
  t.add_event(2, c, EventType::srv_req);
  t.add_event(3, p2, EventType::tau);
  t.finalize();
  const auto phones = t.group_by_ue(DeviceType::phone);
  ASSERT_EQ(phones.size(), 2u);
  EXPECT_EQ(phones[0][0].ue_id, p);
  EXPECT_EQ(phones[1][0].ue_id, p2);
  const auto cars = t.group_by_ue(DeviceType::connected_car);
  ASSERT_EQ(cars.size(), 1u);
  EXPECT_EQ(cars[0][0].type, EventType::srv_req);
}

TEST(Rng, CategoricalDegenerateInputs) {
  Rng rng(17);
  Rng untouched = rng;

  // Empty span: index 0, no randomness consumed.
  EXPECT_EQ(rng.categorical({}), 0u);

  // No usable weight (zero, negative, NaN, infinite): last index, still no
  // randomness consumed.
  const double unusable[] = {0.0, -2.0, std::nan(""),
                             std::numeric_limits<double>::infinity()};
  EXPECT_EQ(rng.categorical(unusable), 3u);
  EXPECT_EQ(rng.uniform(), untouched.uniform());

  // Non-finite and non-positive entries are never selected.
  const double mixed[] = {-1.0, std::nan(""), 3.0, 0.0};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.categorical(mixed), 2u);
  }
}

TEST(Trace, SortEventsMatchesStdSort) {
  // Exercise both the small-input std::sort fallback and the scatter path
  // (n above k_scatter_min), against std::sort over the same total order.
  for (const std::size_t n : {std::size_t{257}, std::size_t{10'000}}) {
    Rng rng(23 + n);
    constexpr TimeMs lo = 1'000'000, hi = 4'600'000;
    std::vector<ControlEvent> events;
    events.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      events.push_back(
          {lo + static_cast<TimeMs>(rng.uniform_index(hi - lo)),
           static_cast<UeId>(rng.uniform_index(500)),
           k_all_event_types[rng.uniform_index(k_num_event_types)]});
    }
    std::vector<ControlEvent> expected = events;
    std::sort(expected.begin(), expected.end(), EventTimeLess{});

    std::vector<ControlEvent> plain = events;
    sort_events(plain);
    ASSERT_EQ(plain, expected);

    std::vector<ControlEvent> hinted = events;
    sort_events(hinted, lo, hi);
    ASSERT_EQ(hinted, expected);

    // Scratch overload, reused across calls like the streaming producers.
    EventSortScratch scratch;
    for (int pass = 0; pass < 2; ++pass) {
      std::vector<ControlEvent> scratched = events;
      sort_events(scratched, lo, hi, scratch);
      ASSERT_EQ(scratched, expected);
    }
  }
}

TEST(Trace, EventTimeLessIsTotalOrderTiebreak) {
  const ControlEvent a{5, 1, EventType::atch};
  const ControlEvent b{5, 2, EventType::atch};
  const ControlEvent c{5, 1, EventType::tau};
  EXPECT_TRUE(event_time_less(a, b));
  EXPECT_TRUE(event_time_less(a, c));
  EXPECT_FALSE(event_time_less(b, a));
}

}  // namespace
}  // namespace cpg
