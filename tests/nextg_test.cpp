#include <gtest/gtest.h>

#include "generator/traffic_generator.h"
#include "model/fit.h"
#include "model/nextg.h"
#include "statemachine/replay.h"
#include "test_util.h"

namespace cpg::model {
namespace {

const ModelSet& lte_model() {
  static const ModelSet set = [] {
    FitOptions opts;
    opts.method = Method::ours;
    opts.clustering.theta_n = 30;
    return fit_model(testutil::small_ground_truth(200, 48.0, 11), opts);
  }();
  return set;
}

Trace generate(const ModelSet& set, std::uint64_t seed = 5) {
  gen::GenerationRequest req;
  req.ue_counts = {150, 60, 40};
  req.start_hour = 9;
  req.duration_hours = 4.0;
  req.seed = seed;
  req.num_threads = 2;
  return gen::generate_trace(set, req);
}

double ho_share(const Trace& t, DeviceType d) {
  const auto counts = t.count_by_device_event();
  std::uint64_t total = 0;
  for (auto c : counts[index_of(d)]) total += c;
  if (total == 0) return 0.0;
  return static_cast<double>(counts[index_of(d)][index_of(EventType::ho)]) /
         static_cast<double>(total);
}

TEST(NextG, Defaults) {
  EXPECT_FALSE(nsa_defaults().standalone);
  EXPECT_DOUBLE_EQ(nsa_defaults().ho_frequency_scale, 4.6);
  EXPECT_TRUE(sa_defaults().standalone);
  EXPECT_DOUBLE_EQ(sa_defaults().ho_frequency_scale, 3.0);
}

TEST(NextG, NsaKeepsLteMachine) {
  const ModelSet nsa = derive_5g(lte_model(), nsa_defaults());
  EXPECT_EQ(nsa.spec, &sm::lte_two_level_spec());
}

TEST(NextG, SaUsesAdjustedMachine) {
  const ModelSet sa = derive_5g(lte_model(), sa_defaults());
  EXPECT_EQ(sa.spec, &sm::fiveg_sa_spec());
}

TEST(NextG, SaModelHasNoTauLaws) {
  const ModelSet sa = derive_5g(lte_model(), sa_defaults());
  for (DeviceType d : k_all_device_types) {
    const DeviceModel& dev = sa.device(d);
    // Sub-state laws referencing TAU edges must be gone.
    for (const StateLaw& law : dev.pooled_all.sub) {
      for (const TransitionLaw& t : law.out) {
        const auto& edge = sa.spec->sub_transitions()[t.edge];
        EXPECT_NE(edge.event, EventType::tau);
      }
    }
    // First-event law no longer proposes TAU.
    if (dev.pooled_all.first_event.has_data()) {
      EXPECT_DOUBLE_EQ(
          dev.pooled_all.first_event.type_prob[index_of(EventType::tau)],
          0.0);
    }
  }
}

TEST(NextG, SaTraceContainsNoTau) {
  const ModelSet sa = derive_5g(lte_model(), sa_defaults());
  const Trace t = generate(sa);
  for (const ControlEvent& e : t.events()) {
    ASSERT_NE(e.type, EventType::tau);
  }
}

TEST(NextG, HoShareIncreasesLteToNsaAndSa) {
  // Table 7's headline trend: HO share rises sharply under 5G, and NSA has
  // more HO than SA.
  const Trace lte = generate(lte_model());
  const Trace nsa = generate(derive_5g(lte_model(), nsa_defaults()));
  const Trace sa = generate(derive_5g(lte_model(), sa_defaults()));
  for (DeviceType d : {DeviceType::phone, DeviceType::connected_car}) {
    const double h_lte = ho_share(lte, d);
    const double h_nsa = ho_share(nsa, d);
    const double h_sa = ho_share(sa, d);
    EXPECT_GT(h_nsa, 1.5 * h_lte) << to_string(d);
    EXPECT_GT(h_sa, 1.2 * h_lte) << to_string(d);
    EXPECT_GT(h_nsa, h_sa) << to_string(d);
  }
}

TEST(NextG, NsaTraceStillConforms) {
  const ModelSet nsa = derive_5g(lte_model(), nsa_defaults());
  const Trace t = generate(nsa);
  EXPECT_EQ(sm::count_violations(sm::lte_two_level_spec(), t), 0u);
}

TEST(NextG, SaTraceConformsToSaMachine) {
  const ModelSet sa = derive_5g(lte_model(), sa_defaults());
  const Trace t = generate(sa);
  EXPECT_EQ(sm::count_violations(sm::fiveg_sa_spec(), t), 0u);
}

TEST(NextG, UnitScaleIsIdentityOnEventMix) {
  NextGOptions opts;
  opts.standalone = false;
  opts.ho_frequency_scale = 1.0;
  const ModelSet same = derive_5g(lte_model(), opts);
  const Trace a = generate(lte_model(), 17);
  const Trace b = generate(same, 17);
  EXPECT_EQ(a.num_events(), b.num_events());
}

}  // namespace
}  // namespace cpg::model
