// Statistical round-trip property: a trace synthesized from a fitted model
// must, when replayed and re-fitted, reproduce the model's own laws — the
// generator is a faithful sampler of the Semi-Markov process it was given.
#include <gtest/gtest.h>

#include "generator/traffic_generator.h"
#include "model/fit.h"
#include "statemachine/replay.h"
#include "stats/gof.h"
#include "test_util.h"
#include "validation/micro.h"

namespace cpg {
namespace {

class RoundTrip : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const Trace fit_trace = testutil::small_ground_truth(300, 48.0, 101);
    model::FitOptions opts;
    opts.method = model::Method::ours;
    opts.clustering.theta_n = 50;
    models_ = new model::ModelSet(model::fit_model(fit_trace, opts));

    gen::GenerationRequest req;
    req.ue_counts = {1'890, 750, 360};  // scaled-up population
    req.start_hour = 18;
    req.duration_hours = 1.0;
    req.seed = 31;
    req.num_threads = 2;
    generated_ = new Trace(gen::generate_trace(*models_, req));

    // The source ground truth's same busy window, for distribution
    // comparison.
    const Trace source_full = testutil::small_ground_truth(3000, 21.0, 102);
    Trace sliced;
    for (std::size_t u = 0; u < source_full.num_ues(); ++u) {
      sliced.add_ue(source_full.device(static_cast<UeId>(u)));
    }
    const auto [a, b] =
        source_full.time_range(18 * k_ms_per_hour, 19 * k_ms_per_hour);
    for (std::size_t i = a; i < b; ++i) {
      sliced.add_event(source_full.events()[i]);
    }
    sliced.finalize();
    source_ = new Trace(std::move(sliced));
  }

  static void TearDownTestSuite() {
    delete models_;
    delete generated_;
    delete source_;
    models_ = nullptr;
    generated_ = nullptr;
    source_ = nullptr;
  }

  static model::ModelSet* models_;
  static Trace* generated_;
  static Trace* source_;
};

model::ModelSet* RoundTrip::models_ = nullptr;
Trace* RoundTrip::generated_ = nullptr;
Trace* RoundTrip::source_ = nullptr;

TEST_F(RoundTrip, SojournDistributionsMatchSource) {
  // The generated trace's CONNECTED/IDLE sojourn distributions sit close to
  // an *independent draw* of the source process (two-sample K-S distance on
  // large samples).
  const auto& spec = sm::lte_two_level_spec();
  for (UeState s : {UeState::connected, UeState::idle}) {
    const auto gen_s = validation::state_sojourns(*generated_, spec,
                                                  DeviceType::phone, s);
    const auto src_s =
        validation::state_sojourns(*source_, spec, DeviceType::phone, s);
    ASSERT_GT(gen_s.size(), 1'000u) << to_string(s);
    ASSERT_GT(src_s.size(), 1'000u) << to_string(s);
    EXPECT_LT(validation::max_y_distance(gen_s, src_s), 0.08)
        << to_string(s);
  }
}

TEST_F(RoundTrip, RefittedTransitionProbabilitiesAgree) {
  // Re-fit a model on the generated trace: the pooled top-level transition
  // probabilities must agree with the original model's.
  model::FitOptions opts;
  opts.method = model::Method::ours;
  opts.clustering.theta_n = 50;
  const auto refit = model::fit_model(*generated_, opts);
  for (DeviceType d : {DeviceType::phone, DeviceType::connected_car}) {
    const auto& a =
        models_->device(d).pooled_all.top[index_of(TopState::connected)];
    const auto& b =
        refit.device(d).pooled_all.top[index_of(TopState::connected)];
    ASSERT_TRUE(a.has_data());
    ASSERT_TRUE(b.has_data());
    for (const auto& ta : a.out) {
      for (const auto& tb : b.out) {
        if (ta.edge == tb.edge) {
          EXPECT_NEAR(ta.probability, tb.probability, 0.05)
              << to_string(d) << " edge " << ta.edge;
        }
      }
    }
  }
}

TEST_F(RoundTrip, EventMixSurvivesTheRoundTrip) {
  const auto src_bd = sm::compute_state_breakdown(sm::lte_two_level_spec(),
                                                  *source_);
  const auto gen_bd = sm::compute_state_breakdown(sm::lte_two_level_spec(),
                                                  *generated_);
  // Dominant rows within a few points.
  for (std::size_t r : {2u, 3u}) {  // SRV_REQ, S1_CONN_REL
    EXPECT_NEAR(gen_bd.fraction(DeviceType::phone, r),
                src_bd.fraction(DeviceType::phone, r), 0.05);
  }
}

}  // namespace
}  // namespace cpg
