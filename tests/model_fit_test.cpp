#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "io/model_io.h"
#include "model/fit.h"
#include "test_util.h"

namespace cpg::model {
namespace {

const Trace& fit_trace() {
  static const Trace trace = testutil::small_ground_truth(200, 48.0, 11);
  return trace;
}

ModelSet fit_with(Method m) {
  FitOptions opts;
  opts.method = m;
  opts.clustering.theta_n = 30;  // scaled-down population
  return fit_model(fit_trace(), opts);
}

TEST(MethodProperties, MatchTable3) {
  EXPECT_FALSE(uses_clustering(Method::base));
  EXPECT_TRUE(uses_clustering(Method::b1));
  EXPECT_TRUE(uses_clustering(Method::b2));
  EXPECT_TRUE(uses_clustering(Method::ours));

  EXPECT_FALSE(uses_empirical_sojourns(Method::base));
  EXPECT_FALSE(uses_empirical_sojourns(Method::b2));
  EXPECT_TRUE(uses_empirical_sojourns(Method::ours));

  EXPECT_TRUE(uses_overlay_ho_tau(Method::base));
  EXPECT_TRUE(uses_overlay_ho_tau(Method::b1));
  EXPECT_FALSE(uses_overlay_ho_tau(Method::b2));
  EXPECT_FALSE(uses_overlay_ho_tau(Method::ours));

  EXPECT_FALSE(spec_for(Method::base).has_sub_machine());
  EXPECT_FALSE(spec_for(Method::b1).has_sub_machine());
  EXPECT_TRUE(spec_for(Method::b2).has_sub_machine());
  EXPECT_TRUE(spec_for(Method::ours).has_sub_machine());
}

TEST(FitModel, RequiresFinalizedTrace) {
  Trace t;
  const UeId u = t.add_ue(DeviceType::phone);
  t.add_event(10, u, EventType::srv_req);
  t.add_event(5, u, EventType::atch);  // out of order -> unsorted
  EXPECT_THROW(fit_model(t, {}), std::logic_error);
}

TEST(FitModel, ProbabilitiesArePartitionOfUnity) {
  const ModelSet set = fit_with(Method::ours);
  for (DeviceType d : k_all_device_types) {
    const DeviceModel& dev = set.device(d);
    for (int h = 0; h < 24; ++h) {
      for (const HourClusterModel& m : dev.by_hour[h]) {
        for (const StateLaw& law : m.top) {
          if (!law.has_data()) continue;
          double sum = 0.0;
          for (const TransitionLaw& t : law.out) {
            EXPECT_GT(t.probability, 0.0);
            EXPECT_LE(t.probability, 1.0 + 1e-12);
            ASSERT_NE(t.sojourn, nullptr);
            sum += t.probability;
          }
          EXPECT_NEAR(sum, 1.0, 1e-9);
        }
      }
    }
  }
}

TEST(FitModel, OursUsesEmpiricalSojourns) {
  const ModelSet set = fit_with(Method::ours);
  const DeviceModel& dev = set.device(DeviceType::phone);
  const StateLaw& law = dev.pooled_all.top[index_of(TopState::connected)];
  ASSERT_TRUE(law.has_data());
  for (const TransitionLaw& t : law.out) {
    EXPECT_EQ(t.sojourn->name(), "empirical");
  }
}

TEST(FitModel, B2UsesExponentialSojourns) {
  const ModelSet set = fit_with(Method::b2);
  const DeviceModel& dev = set.device(DeviceType::phone);
  const StateLaw& law = dev.pooled_all.top[index_of(TopState::connected)];
  ASSERT_TRUE(law.has_data());
  for (const TransitionLaw& t : law.out) {
    EXPECT_EQ(t.sojourn->name(), "exponential");
  }
}

TEST(FitModel, OverlayLawsOnlyForEmmEcmMethods) {
  const ModelSet base = fit_with(Method::base);
  const ModelSet ours = fit_with(Method::ours);
  const auto& base_overlay =
      base.device(DeviceType::phone).pooled_all.overlay;
  EXPECT_NE(base_overlay[index_of(EventType::ho)], nullptr);
  EXPECT_NE(base_overlay[index_of(EventType::tau)], nullptr);
  EXPECT_EQ(base_overlay[index_of(EventType::srv_req)], nullptr);
  const auto& ours_overlay =
      ours.device(DeviceType::phone).pooled_all.overlay;
  EXPECT_EQ(ours_overlay[index_of(EventType::ho)], nullptr);
}

TEST(FitModel, BaseHasSingleClusterPerHour) {
  const ModelSet set = fit_with(Method::base);
  for (DeviceType d : k_all_device_types) {
    const DeviceModel& dev = set.device(d);
    if (!dev.has_ues()) continue;
    for (int h = 0; h < 24; ++h) {
      EXPECT_EQ(dev.num_clusters(h), 1u);
    }
    for (const auto& traj : dev.ue_traj) {
      for (auto c : traj) EXPECT_EQ(c, 0u);
    }
  }
}

TEST(FitModel, ClusteringProducesMultipleClusters) {
  const ModelSet set = fit_with(Method::ours);
  const DeviceModel& dev = set.device(DeviceType::phone);
  std::size_t max_clusters = 0;
  for (int h = 0; h < 24; ++h) {
    max_clusters = std::max(max_clusters, dev.num_clusters(h));
  }
  EXPECT_GT(max_clusters, 1u);
  // Trajectories point at valid clusters.
  for (const auto& traj : dev.ue_traj) {
    for (int h = 0; h < 24; ++h) {
      EXPECT_LT(traj[h], dev.num_clusters(h));
    }
  }
}

TEST(FitModel, SubStateLawsExistForTwoLevelMethods) {
  const ModelSet set = fit_with(Method::ours);
  const DeviceModel& dev = set.device(DeviceType::connected_car);
  // Cars handover a lot: the CONNECTED sub-machine must be populated.
  EXPECT_TRUE(dev.pooled_all.sub[index_of(SubState::srv_req_s)].has_data());
  EXPECT_TRUE(dev.pooled_all.sub[index_of(SubState::ho_s)].has_data());
  EXPECT_TRUE(dev.pooled_all.sub[index_of(SubState::s1_rel_s_1)].has_data());
  // TAU_S_IDLE has exactly one outgoing edge -> probability 1.
  const StateLaw& tau_idle =
      dev.pooled_all.sub[index_of(SubState::tau_s_idle)];
  ASSERT_TRUE(tau_idle.has_data());
  ASSERT_EQ(tau_idle.out.size(), 1u);
  EXPECT_DOUBLE_EQ(tau_idle.out[0].probability, 1.0);
}

TEST(FitModel, FirstEventModelIsSane) {
  const ModelSet set = fit_with(Method::ours);
  const DeviceModel& dev = set.device(DeviceType::phone);
  const FirstEventLaw& fe = dev.pooled_all.first_event;
  ASSERT_TRUE(fe.has_data());
  double sum = 0.0;
  for (double p : fe.type_prob) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(fe.p_active, 0.0);
  EXPECT_LE(fe.p_active, 1.0);
  // Offsets live within an hour.
  EXPECT_GE(fe.offset_s->min(), 0.0);
  EXPECT_LT(fe.offset_s->max(), 3600.0);
}

TEST(FitModel, ResolutionFallsBackToPools) {
  const ModelSet set = fit_with(Method::ours);
  const DeviceModel& dev = set.device(DeviceType::phone);
  // A bogus cluster id falls back to hour/global pools rather than failing.
  const StateLaw* law =
      resolve_top_law(dev, 3, 999'999u, TopState::connected);
  ASSERT_NE(law, nullptr);
  EXPECT_TRUE(law->has_data());
  EXPECT_NE(resolve_first_event(dev, 3, 999'999u), nullptr);
}

TEST(FitModel, NumDaysFitted) {
  const ModelSet set = fit_with(Method::ours);
  EXPECT_EQ(set.num_days_fitted, 2);
}

TEST(SampleTransition, FollowsProbabilities) {
  StateLaw law;
  auto dist = std::make_shared<stats::Exponential>(1.0);
  law.out.push_back({0, 0.25, dist});
  law.out.push_back({1, 0.75, dist});
  Rng rng(33);
  int first = 0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto st = sample_transition(law, rng);
    ASSERT_GE(st.edge, 0);
    if (st.edge == 0) ++first;
    EXPECT_GE(st.sojourn_s, 0.0);
  }
  EXPECT_NEAR(first / double(n), 0.25, 0.02);
}

TEST(SampleTransition, SubUnityMassMeansNoTransition) {
  StateLaw law;
  auto dist = std::make_shared<stats::Exponential>(1.0);
  law.out.push_back({0, 0.3, dist});  // 70% of the mass removed (5G SA)
  Rng rng(34);
  int none = 0;
  constexpr int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (sample_transition(law, rng).edge < 0) ++none;
  }
  EXPECT_NEAR(none / double(n), 0.7, 0.02);
}

TEST(SampleTransition, EmptyLawYieldsNoEdge) {
  StateLaw law;
  Rng rng(35);
  EXPECT_EQ(sample_transition(law, rng).edge, -1);
}

TEST(FitModel, ParallelFittingIsThreadCountInvariant) {
  // Every parallel task owns a disjoint model slice and a private
  // (seed, device, hour) RNG stream, so the fitted model must serialize
  // byte-identically for any worker count.
  auto fit_serialized = [](unsigned threads) {
    FitOptions opts;
    opts.method = Method::ours;
    opts.clustering.theta_n = 30;
    opts.num_threads = threads;
    const ModelSet set = fit_model(fit_trace(), opts);
    std::ostringstream os;
    io::save_model(set, os);
    return os.str();
  };
  const std::string baseline = fit_serialized(1);
  EXPECT_FALSE(baseline.empty());
  EXPECT_EQ(baseline, fit_serialized(2));
  EXPECT_EQ(baseline, fit_serialized(5));
}

}  // namespace
}  // namespace cpg::model
