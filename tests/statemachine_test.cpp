#include <gtest/gtest.h>

#include "statemachine/machine.h"
#include "statemachine/spec.h"

namespace cpg::sm {
namespace {

using enum TopState;
using enum SubState;
using enum EventType;

// --- specs --------------------------------------------------------------------

TEST(Spec, EmmEcmTopTransitions) {
  const MachineSpec& s = emm_ecm_spec();
  EXPECT_EQ(s.top_next(deregistered, atch), connected);
  EXPECT_EQ(s.top_next(connected, s1_conn_rel), idle);
  EXPECT_EQ(s.top_next(connected, dtch), deregistered);
  EXPECT_EQ(s.top_next(idle, srv_req), connected);
  EXPECT_EQ(s.top_next(idle, dtch), deregistered);
  // Illegal combinations have no destination.
  EXPECT_FALSE(s.top_next(deregistered, srv_req).has_value());
  EXPECT_FALSE(s.top_next(connected, atch).has_value());
  EXPECT_FALSE(s.top_next(idle, s1_conn_rel).has_value());
  EXPECT_FALSE(s.has_sub_machine());
}

TEST(Spec, TwoLevelConnectedSubMachine) {
  const MachineSpec& s = lte_two_level_spec();
  EXPECT_TRUE(s.has_sub_machine());
  EXPECT_EQ(s.sub_next(connected, srv_req_s, ho), ho_s);
  EXPECT_EQ(s.sub_next(connected, srv_req_s, tau), tau_s_conn);
  EXPECT_EQ(s.sub_next(connected, ho_s, ho), ho_s);
  EXPECT_EQ(s.sub_next(connected, ho_s, tau), tau_s_conn);
  EXPECT_EQ(s.sub_next(connected, tau_s_conn, tau), tau_s_conn);
  EXPECT_EQ(s.sub_next(connected, tau_s_conn, ho), ho_s);
}

TEST(Spec, TwoLevelIdleSubMachine) {
  const MachineSpec& s = lte_two_level_spec();
  EXPECT_EQ(s.sub_next(idle, s1_rel_s_1, tau), tau_s_idle);
  EXPECT_EQ(s.sub_next(idle, tau_s_idle, s1_conn_rel), s1_rel_s_2);
  EXPECT_EQ(s.sub_next(idle, s1_rel_s_2, tau), tau_s_idle);
  // No HO inside IDLE.
  EXPECT_FALSE(s.sub_next(idle, s1_rel_s_1, ho).has_value());
  // The starred guard: SRV_REQ can leave IDLE only from S1_REL_S_1/2.
  EXPECT_TRUE(s.srv_req_allowed_from(s1_rel_s_1));
  EXPECT_TRUE(s.srv_req_allowed_from(s1_rel_s_2));
  EXPECT_FALSE(s.srv_req_allowed_from(tau_s_idle));
}

TEST(Spec, EntrySubstates) {
  const MachineSpec& s = lte_two_level_spec();
  EXPECT_EQ(s.entry_substate(connected), srv_req_s);
  EXPECT_EQ(s.entry_substate(idle), s1_rel_s_1);
  EXPECT_EQ(s.entry_substate(deregistered), none);
  EXPECT_EQ(emm_ecm_spec().entry_substate(connected), none);
}

TEST(Spec, FiveGSaDropsTauEntirely) {
  const MachineSpec& s = fiveg_sa_spec();
  for (const SubTransition& t : s.sub_transitions()) {
    EXPECT_NE(t.event, tau);
    EXPECT_EQ(t.context, connected);
  }
  // The IDLE sub-machine disappears (it only handled TAU cycles).
  EXPECT_EQ(s.entry_substate(idle), none);
  // The HO loop survives.
  EXPECT_EQ(s.sub_next(connected, srv_req_s, ho), ho_s);
  EXPECT_EQ(s.sub_next(connected, ho_s, ho), ho_s);
  // No SRV_REQ guard needed without the IDLE sub-machine.
  EXPECT_TRUE(s.srv_req_allowed_from(none));
}

TEST(Spec, TopEdgeTablesAgreeAcrossSpecs) {
  // The 5G derivation relies on identical top-level edge indexing.
  const auto a = lte_two_level_spec().top_transitions();
  const auto b = fiveg_sa_spec().top_transitions();
  const auto c = emm_ecm_spec().top_transitions();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), c.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
    EXPECT_EQ(a[i], c[i]);
  }
}

TEST(Spec, OutEdgeQueries) {
  const MachineSpec& s = lte_two_level_spec();
  EXPECT_EQ(s.top_out(connected).size(), 2u);  // S1_CONN_REL, DTCH
  EXPECT_EQ(s.top_out(idle).size(), 2u);       // SRV_REQ, DTCH
  EXPECT_EQ(s.top_out(deregistered).size(), 1u);
  EXPECT_EQ(s.sub_out(connected, srv_req_s).size(), 2u);
  EXPECT_EQ(s.sub_out(idle, tau_s_idle).size(), 1u);
  EXPECT_TRUE(s.sub_out(deregistered, none).empty());
}

// --- machine runtime ------------------------------------------------------------

TEST(Machine, HappyPathLifecycle) {
  TwoLevelMachine m(lte_two_level_spec(), deregistered);
  EXPECT_EQ(m.sub(), none);

  auto r = m.apply(atch);
  EXPECT_TRUE(r.accepted);
  EXPECT_TRUE(r.top_changed);
  EXPECT_EQ(m.top(), connected);
  EXPECT_EQ(m.sub(), srv_req_s);

  r = m.apply(ho);
  EXPECT_TRUE(r.accepted);
  EXPECT_FALSE(r.top_changed);
  EXPECT_TRUE(r.sub_changed);
  EXPECT_EQ(m.sub(), ho_s);

  r = m.apply(s1_conn_rel);
  EXPECT_TRUE(r.accepted);
  EXPECT_EQ(m.top(), idle);
  EXPECT_EQ(m.sub(), s1_rel_s_1);

  r = m.apply(tau);
  EXPECT_TRUE(r.accepted);
  EXPECT_EQ(m.sub(), tau_s_idle);

  // This S1_CONN_REL is the second-level release of the idle TAU.
  r = m.apply(s1_conn_rel);
  EXPECT_TRUE(r.accepted);
  EXPECT_FALSE(r.top_changed);
  EXPECT_EQ(m.top(), idle);
  EXPECT_EQ(m.sub(), s1_rel_s_2);

  r = m.apply(srv_req);
  EXPECT_TRUE(r.accepted);
  EXPECT_EQ(m.top(), connected);

  r = m.apply(dtch);
  EXPECT_TRUE(r.accepted);
  EXPECT_EQ(m.top(), deregistered);
}

TEST(Machine, SrvReqGuardBlocksFromTauSIdle) {
  TwoLevelMachine m(lte_two_level_spec(), idle);
  m.apply(tau);
  ASSERT_EQ(m.sub(), tau_s_idle);
  const auto r = m.apply(srv_req);
  // Lenient runtime: the transition happens to stay synchronized, but the
  // event is reported as a violation.
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(m.top(), connected);
}

TEST(Machine, HoInIdleIsViolationWithoutStateChange) {
  TwoLevelMachine m(lte_two_level_spec(), idle);
  const auto r = m.apply(ho);
  EXPECT_FALSE(r.accepted);
  EXPECT_FALSE(r.top_changed);
  EXPECT_EQ(m.top(), idle);
}

TEST(Machine, ViolationResyncs) {
  TwoLevelMachine m(lte_two_level_spec(), deregistered);
  // SRV_REQ while deregistered: evidently the UE is connected.
  auto r = m.apply(srv_req);
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(m.top(), connected);

  // S1_CONN_REL while deregistered resyncs to idle.
  m.force(deregistered);
  r = m.apply(s1_conn_rel);
  EXPECT_FALSE(r.accepted);
  EXPECT_EQ(m.top(), idle);
}

TEST(Machine, SubStatePrecedenceForS1ConnRel) {
  // In CONNECTED, S1_CONN_REL is a top edge; in IDLE at TAU_S_IDLE it is a
  // sub edge. Verify both routes.
  TwoLevelMachine m(lte_two_level_spec(), connected);
  auto r = m.apply(s1_conn_rel);
  EXPECT_TRUE(r.top_changed);
  EXPECT_FALSE(r.sub_changed);

  m.apply(tau);  // -> TAU_S_IDLE
  r = m.apply(s1_conn_rel);
  EXPECT_FALSE(r.top_changed);
  EXPECT_TRUE(r.sub_changed);
}

TEST(Machine, EmmEcmIgnoresHoTau) {
  TwoLevelMachine m(emm_ecm_spec(), connected);
  EXPECT_FALSE(m.apply(ho).accepted);
  EXPECT_FALSE(m.apply(tau).accepted);
  EXPECT_EQ(m.top(), connected);
}

TEST(Machine, EcmView) {
  TwoLevelMachine m(lte_two_level_spec(), connected);
  EXPECT_EQ(m.ecm(), EcmState::connected);
  m.apply(s1_conn_rel);
  EXPECT_EQ(m.ecm(), EcmState::idle);
  m.apply(dtch);
  EXPECT_EQ(m.ecm(), EcmState::idle);
}

TEST(InferInitialTop, PerFirstEvent) {
  EXPECT_EQ(infer_initial_top(atch), deregistered);
  EXPECT_EQ(infer_initial_top(srv_req), idle);
  EXPECT_EQ(infer_initial_top(s1_conn_rel), connected);
  EXPECT_EQ(infer_initial_top(ho), connected);
  EXPECT_EQ(infer_initial_top(dtch), connected);
  EXPECT_EQ(infer_initial_top(tau), idle);
}

}  // namespace
}  // namespace cpg::sm
