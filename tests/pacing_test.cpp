// Direct unit tests of the pacing layer: anchoring, lag (drift)
// accounting, catch-up after a slow delivery, and mid-stream retuning
// (Pacer::set_factor, the primitive behind scenario phase `accel`). Sleeps
// are kept to a few tens of milliseconds; assertions use generous margins
// so a loaded CI machine cannot produce flakes.
#include "stream/pacing.h"

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <thread>

namespace cpg::stream {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since)
      .count();
}

TEST(Pacer, PassthroughNeverBlocksOrDrifts) {
  Pacer p(ClockMode::as_fast_as_possible);
  EXPECT_TRUE(p.passthrough());
  const auto t0 = Clock::now();
  for (TimeMs t = 0; t < 100'000'000; t += 10'000'000) p.pace(t);
  EXPECT_LT(elapsed_ms(t0), 1'000.0);  // no sleeping happened
  EXPECT_EQ(p.drift_ms(), 0.0);
}

TEST(Pacer, FirstCallAnchorsWithoutSleeping) {
  Pacer p(ClockMode::real_time);
  const auto t0 = Clock::now();
  p.pace(5 * k_ms_per_hour);  // arbitrary stream position
  EXPECT_LT(elapsed_ms(t0), 1'000.0);
  EXPECT_EQ(p.drift_ms(), 0.0);
}

TEST(Pacer, RealTimePacesAfterTheAnchor) {
  Pacer p(ClockMode::real_time);
  p.pace(1'000);
  const auto t0 = Clock::now();
  p.pace(1'040);  // 40 trace ms after the anchor -> ~40 wall ms
  const double waited = elapsed_ms(t0);
  EXPECT_GE(waited, 30.0);
  EXPECT_LT(waited, 5'000.0);
  EXPECT_EQ(p.drift_ms(), 0.0);  // we slept, so we kept up
}

TEST(Pacer, AcceleratedDividesTheWait) {
  Pacer p(ClockMode::accelerated, 10.0);
  EXPECT_DOUBLE_EQ(p.factor(), 10.0);
  p.pace(0);
  const auto t0 = Clock::now();
  p.pace(300);  // 300 trace ms at 10x -> ~30 wall ms
  const double waited = elapsed_ms(t0);
  EXPECT_GE(waited, 20.0);
  EXPECT_LT(waited, 5'000.0);
}

TEST(Pacer, LagIsAccountedThenCaughtUp) {
  Pacer p(ClockMode::accelerated, 1'000.0);
  p.pace(0);
  // Simulate a slow sink: wall time passes with no stream progress, so the
  // next delivery is behind schedule and must report drift instead of
  // sleeping.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto t0 = Clock::now();
  p.pace(1);  // target was ~0.001 wall ms after the anchor
  EXPECT_LT(elapsed_ms(t0), 20.0);  // a lagging pace() must not sleep
  EXPECT_GT(p.drift_ms(), 20.0);
  // Far-future stream position: the pacer sleeps again and the drift
  // resets — catch-up is complete.
  p.pace(80'000);  // ~80 wall ms after the anchor at 1000x
  EXPECT_EQ(p.drift_ms(), 0.0);
}

TEST(Pacer, SetFactorReanchorsAtTheCurrentPosition) {
  Pacer p(ClockMode::accelerated, 1.0e9);  // effectively instant
  p.pace(0);
  p.pace(10 * k_ms_per_minute);
  // Retune to 100x: the next pace() re-anchors, so the hour of stream time
  // that already elapsed is not billed at the new rate (which would demand
  // a ~36 s sleep).
  p.set_factor(100.0);
  EXPECT_DOUBLE_EQ(p.factor(), 100.0);
  const auto t0 = Clock::now();
  p.pace(k_ms_per_hour);       // re-anchor: returns immediately
  p.pace(k_ms_per_hour + 3'000);  // 3 s of stream at 100x -> ~30 wall ms
  const double waited = elapsed_ms(t0);
  EXPECT_GE(waited, 20.0);
  EXPECT_LT(waited, 5'000.0);
}

TEST(Pacer, SetFactorIsIgnoredInPassthrough) {
  Pacer p(ClockMode::as_fast_as_possible);
  p.set_factor(0.25);  // no throw, no effect
  EXPECT_TRUE(p.passthrough());
  const auto t0 = Clock::now();
  p.pace(0);
  p.pace(10 * k_ms_per_hour);
  EXPECT_LT(elapsed_ms(t0), 1'000.0);
}

TEST(Pacer, InvalidFactorsThrow) {
  EXPECT_THROW(Pacer(ClockMode::accelerated, 0.0), std::invalid_argument);
  EXPECT_THROW(Pacer(ClockMode::accelerated, -3.0), std::invalid_argument);
  EXPECT_THROW(Pacer(ClockMode::accelerated, 1.0 / 0.0),
               std::invalid_argument);
  Pacer p(ClockMode::real_time);
  EXPECT_THROW(p.set_factor(0.0), std::invalid_argument);
  EXPECT_THROW(p.set_factor(-1.0), std::invalid_argument);
  EXPECT_THROW(p.set_factor(0.0 / 0.0), std::invalid_argument);
  // A failed retune leaves the pacer untouched.
  EXPECT_DOUBLE_EQ(p.factor(), 1.0);
}

}  // namespace
}  // namespace cpg::stream
