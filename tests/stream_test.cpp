// Tests for the streaming generation runtime (src/stream/): the
// determinism contract (streamed == batch, byte-identical, for any shard /
// thread / slice configuration), backpressure behavior under a slow sink,
// CSV sink byte-compatibility, and live MCN ingest parity.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "generator/traffic_generator.h"
#include "io/csv.h"
#include "mcn/simulator.h"
#include "model/fit.h"
#include "obs/metrics.h"
#include "stream/bounded_queue.h"
#include "stream/csv_sink.h"
#include "spatial/config.h"
#include "stream/mcn_sink.h"
#include "stream/stream_generator.h"
#include "test_util.h"

namespace cpg::stream {
namespace {

const model::ModelSet& ours_model() {
  static const model::ModelSet set = [] {
    model::FitOptions opts;
    opts.method = model::Method::ours;
    opts.clustering.theta_n = 30;
    return model::fit_model(testutil::small_ground_truth(200, 48.0, 11),
                            opts);
  }();
  return set;
}

gen::GenerationRequest small_request() {
  gen::GenerationRequest req;
  req.ue_counts = {120, 50, 30};
  req.start_hour = 10;
  req.duration_hours = 2.0;
  req.seed = 99;
  req.num_threads = 2;
  return req;
}

const Trace& batch_trace() {
  static const Trace t = gen::generate_trace(ours_model(), small_request());
  return t;
}

void expect_identical(const Trace& streamed, const Trace& batch) {
  ASSERT_EQ(streamed.num_ues(), batch.num_ues());
  for (UeId u = 0; u < batch.num_ues(); ++u) {
    ASSERT_EQ(streamed.device(u), batch.device(u));
  }
  ASSERT_TRUE(streamed.finalized());
  ASSERT_EQ(streamed.num_events(), batch.num_events());
  const auto a = streamed.events();
  const auto b = batch.events();
  ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
}

TEST(Stream, ByteIdenticalToBatchAcrossShardsSlicesThreads) {
  const Trace& batch = batch_trace();
  ASSERT_GT(batch.num_events(), 100u);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{8}}) {
    for (const TimeMs slice_ms : {7 * k_ms_per_minute, 25 * k_ms_per_minute}) {
      for (const unsigned threads : {1u, 3u}) {
        StreamOptions opts;
        opts.num_shards = shards;
        opts.num_threads = threads;
        opts.slice_ms = slice_ms;
        CaptureSink cap;
        const StreamStats stats =
            stream_generate(ours_model(), small_request(), opts, cap);
        SCOPED_TRACE("shards=" + std::to_string(shards) +
                     " slice_ms=" + std::to_string(slice_ms) +
                     " threads=" + std::to_string(threads));
        expect_identical(cap.trace(), batch);
        EXPECT_EQ(stats.events, batch.num_events());
        EXPECT_EQ(stats.num_ues, batch.num_ues());
      }
    }
  }
}

TEST(Stream, DeliversInCanonicalOrder) {
  bool ordered = true;
  bool has_prev = false;
  ControlEvent prev{};
  CallbackSink sink([&](const ControlEvent& e) {
    if (has_prev && event_time_less(e, prev)) ordered = false;
    prev = e;
    has_prev = true;
  });
  StreamOptions opts;
  opts.num_shards = 4;
  opts.slice_ms = 10 * k_ms_per_minute;
  stream_generate(ours_model(), small_request(), opts, sink);
  EXPECT_TRUE(ordered);
  EXPECT_TRUE(has_prev);
}

TEST(Stream, BackpressureBoundsBufferingWithoutLossOrDeadlock) {
  // A deliberately slow sink: the bounded queues must absorb the mismatch
  // by blocking producers, never by dropping events or deadlocking.
  constexpr std::size_t k_cap = 256;
  constexpr std::size_t k_shards = 4;
  std::uint64_t received = 0;
  CallbackSink slow([&](const ControlEvent&) {
    if (++received % 64 == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });
  StreamOptions opts;
  opts.num_shards = k_shards;
  opts.num_threads = 4;
  opts.slice_ms = 5 * k_ms_per_minute;
  opts.max_buffered_events = k_cap;
  const StreamStats stats =
      stream_generate(ours_model(), small_request(), opts, slow);

  EXPECT_EQ(received, batch_trace().num_events());  // nothing dropped
  EXPECT_GT(stats.peak_buffered_events, 0u);
  // Hard bound: per queue max(cap, largest single batch); slices here are
  // far smaller than the cap, so the total stays under shards * cap.
  EXPECT_LE(stats.peak_buffered_events, k_shards * k_cap);
}

TEST(Stream, CsvSinkMatchesBatchCsvByteForByte) {
  std::ostringstream batch_events, batch_ues;
  io::write_events_csv(batch_trace(), batch_events);
  io::write_ues_csv(batch_trace(), batch_ues);

  std::ostringstream stream_events, stream_ues;
  CsvSink sink(stream_events, &stream_ues);
  StreamOptions opts;
  opts.num_shards = 3;
  opts.slice_ms = 11 * k_ms_per_minute;
  stream_generate(ours_model(), small_request(), opts, sink);

  EXPECT_EQ(stream_events.str(), batch_events.str());
  EXPECT_EQ(stream_ues.str(), batch_ues.str());
}

TEST(Stream, LiveMcnIngestMatchesBatchSimulation) {
  mcn::SimulationConfig cfg;
  cfg.nfs[index_of(mcn::NetworkFunction::mme)].workers = 2;
  const mcn::SimulationResult batch = mcn::simulate(batch_trace(), cfg);

  McnLiveSink sink(cfg);
  StreamOptions opts;
  opts.num_shards = 4;
  stream_generate(ours_model(), small_request(), opts, sink);
  const mcn::SimulationResult& live = sink.result();

  EXPECT_EQ(live.procedures, batch.procedures);
  EXPECT_EQ(live.messages, batch.messages);
  EXPECT_DOUBLE_EQ(live.latency_us.mean, batch.latency_us.mean);
  EXPECT_DOUBLE_EQ(live.makespan_s, batch.makespan_s);
  for (std::size_t n = 0; n < mcn::k_num_nfs; ++n) {
    EXPECT_EQ(live.nf[n].messages, batch.nf[n].messages);
  }
}

TEST(Stream, AcceleratedClockPacesDelivery) {
  // 2 trace hours at 18000x ≈ 400 ms of wall time: fast enough for a test,
  // slow enough to prove the pacer actually waits.
  CountingSink sink;
  StreamOptions opts;
  opts.num_shards = 2;
  opts.clock = ClockMode::accelerated;
  opts.accel_factor = 18'000.0;
  const auto t0 = std::chrono::steady_clock::now();
  stream_generate(ours_model(), small_request(), opts, sink);
  const auto wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(sink.total(), batch_trace().num_events());
  EXPECT_GE(wall, 0.1);  // the span between first and last event, scaled
}

TEST(Stream, EmptyPopulationStillOpensAndClosesStream) {
  gen::GenerationRequest req;  // all counts zero
  bool started = false;
  bool finished = false;
  class Probe final : public EventSink {
   public:
    Probe(bool& started, bool& finished)
        : started_(started), finished_(finished) {}
    void on_start(const StreamHeader& h) override {
      started_ = h.ue_devices.empty();
    }
    void on_event(const ControlEvent&) override { FAIL(); }
    void on_finish() override { finished_ = true; }

   private:
    bool& started_;
    bool& finished_;
  } probe(started, finished);
  const StreamStats stats =
      stream_generate(ours_model(), req, StreamOptions{}, probe);
  EXPECT_TRUE(started);
  EXPECT_TRUE(finished);
  EXPECT_EQ(stats.events, 0u);
}

SliceBatch make_batch(std::uint64_t slice, std::size_t n) {
  SliceBatch b;
  b.slice = slice;
  for (std::size_t i = 0; i < n; ++i) {
    b.events.push_back(0, static_cast<UeId>(i), EventType::atch);
  }
  return b;
}

// Regression for the shutdown deadlock: before the fix, close() only
// notified the consumer side and push() never rechecked closed_, so a
// producer blocked on a full queue waited forever once the consumer closed
// the queue and walked away. Now close() wakes the producer and its push
// returns false.
TEST(BoundedQueue, CloseReleasesBlockedProducer) {
  BoundedBatchQueue q(4);
  ASSERT_TRUE(q.push(make_batch(0, 4)));  // fills the queue to capacity

  std::atomic<bool> push_returned{false};
  bool accepted = true;
  std::thread producer([&] {
    accepted = q.push(make_batch(1, 4));  // 4 + 4 > 4: blocks
    push_returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(push_returned.load());  // producer is parked on backpressure

  q.close();  // consumer abandons the stream
  producer.join();
  EXPECT_TRUE(push_returned.load());
  EXPECT_FALSE(accepted);  // the blocked push reported shutdown
}

TEST(BoundedQueue, PushAfterCloseDropsAndPopDrainsThenEnds) {
  BoundedBatchQueue q(100);
  ASSERT_TRUE(q.push(make_batch(0, 3)));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(make_batch(1, 1)));  // closed: dropped, not queued

  const auto drained = q.pop();  // what was buffered is still delivered
  ASSERT_TRUE(drained.has_value());
  EXPECT_EQ(drained->events.size(), 3u);
  EXPECT_FALSE(q.pop().has_value());  // then the stream ends
}

TEST(Stream, SinkThrowPropagatesWithoutDeadlockOrLeak) {
  // Small queues + a sink that dies early: producers are blocked on
  // backpressure at the moment of the throw. The runtime must close the
  // queues, join every worker, and rethrow the sink's exception.
  std::uint64_t delivered = 0;
  CallbackSink dying([&](const ControlEvent&) {
    if (++delivered == 64) throw std::runtime_error("sink failed");
  });
  StreamOptions opts;
  opts.num_shards = 4;
  opts.num_threads = 2;
  opts.slice_ms = 2 * k_ms_per_minute;
  opts.max_buffered_events = 64;
  EXPECT_THROW(stream_generate(ours_model(), small_request(), opts, dying),
               std::runtime_error);
  EXPECT_EQ(delivered, 64u);
}

TEST(Stream, InvalidAccelFactorThrowsBeforeStreamStarts) {
  class NeverSink final : public EventSink {
   public:
    void on_start(const StreamHeader&) override { FAIL(); }
    void on_event(const ControlEvent&) override { FAIL(); }
    void on_finish() override { FAIL(); }
  } sink;
  StreamOptions opts;
  opts.clock = ClockMode::accelerated;
  for (const double bad : {0.0, -3.0,
                           std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN()}) {
    opts.accel_factor = bad;
    EXPECT_THROW(stream_generate(ours_model(), small_request(), opts, sink),
                 std::invalid_argument)
        << "accel_factor=" << bad;
  }
}

TEST(Stream, MetricsAccountForEveryDeliveredEvent) {
  obs::Registry registry;
  gen::GenMetrics gen_metrics = gen::GenMetrics::register_in(registry);
  gen::GenerationRequest req = small_request();
  req.ue_options.metrics = &gen_metrics;

  StreamOptions opts;
  opts.num_shards = 3;
  opts.num_threads = 2;
  opts.slice_ms = 7 * k_ms_per_minute;
  opts.metrics = &registry;
  CountingSink sink;
  const StreamStats stats = stream_generate(ours_model(), req, opts, sink);
  ASSERT_GT(stats.events, 0u);

  std::uint64_t delivered = 0, shard_sum = 0, device_sum = 0, slices = 0;
  for (const obs::FamilySnapshot& fam : registry.snapshot()) {
    for (const obs::SeriesSnapshot& s : fam.series) {
      if (fam.name == "cpg_stream_delivered_events_total") {
        delivered = s.counter;
      } else if (fam.name == "cpg_stream_shard_events_total") {
        shard_sum += s.counter;
      } else if (fam.name == "cpg_gen_events_total") {
        device_sum += s.counter;
      } else if (fam.name == "cpg_stream_slices_delivered_total") {
        slices = s.counter;
      }
    }
  }
  // Three independent accountings of the same stream agree exactly: the
  // consumer-side delivery counter, the per-shard producer counters, and
  // the per-device generator counters.
  EXPECT_EQ(delivered, stats.events);
  EXPECT_EQ(shard_sum, stats.events);
  EXPECT_EQ(device_sum, stats.events);
  EXPECT_EQ(slices, stats.slices);

  // The streamed output also stays byte-identical with metrics enabled
  // (instrumentation must not perturb the delivered sequence).
  EXPECT_EQ(stats.events, batch_trace().num_events());
}

// ---------------------------------------------------------------------------
// Spatial layer: cell-annotated delivery
// ---------------------------------------------------------------------------

struct CellRow {
  TimeMs t;
  UeId ue;
  EventType type;
  std::uint32_t cell;
  bool operator==(const CellRow&) const = default;
};

// Captures the full annotated stream — (t, ue, type, cell) per event — via
// the columnar hook, the only path that carries the cell column.
class CellRowSink final : public EventSink {
 public:
  std::vector<CellRow> rows;
  bool header_had_spatial = false;

  void on_start(const StreamHeader& h) override {
    header_had_spatial = h.spatial != nullptr;
    rows.clear();
  }
  void on_event(const ControlEvent&) override {
    FAIL() << "unpaced delivery must use the columnar path";
  }
  void on_event_columns(const EventColumnsView& cols) override {
    ASSERT_TRUE(cols.has_cells() || cols.empty());
    for (std::size_t i = 0; i < cols.n; ++i) {
      rows.push_back({cols.ts[i], cols.ue[i], cols.type[i], cols.cell[i]});
    }
  }
};

TEST(Spatial, CellsAreByteIdenticalAcrossShardsSlicesThreads) {
  const spatial::SpatialConfig cfg = spatial::load_spatial("grid:12x12x300");

  StreamOptions ref_opts;
  ref_opts.num_shards = 1;
  ref_opts.num_threads = 1;
  ref_opts.spatial = &cfg;
  CellRowSink ref;
  stream_generate(ours_model(), small_request(), ref_opts, ref);
  ASSERT_GT(ref.rows.size(), 100u);
  EXPECT_TRUE(ref.header_had_spatial);

  // The annotated stream is the plain stream plus a cell column: same
  // events, same order, and every cell id on the grid.
  const Trace& batch = batch_trace();
  ASSERT_EQ(ref.rows.size(), batch.num_events());
  const auto batch_events = batch.events();
  for (std::size_t i = 0; i < ref.rows.size(); ++i) {
    ASSERT_EQ(ref.rows[i].t, batch_events[i].t_ms);
    ASSERT_EQ(ref.rows[i].ue, batch_events[i].ue_id);
    ASSERT_EQ(ref.rows[i].type, batch_events[i].type);
    ASSERT_LT(ref.rows[i].cell, cfg.grid.num_cells());
  }

  for (const std::size_t shards : {std::size_t{2}, std::size_t{8}}) {
    for (const TimeMs slice_ms : {7 * k_ms_per_minute, 25 * k_ms_per_minute}) {
      for (const unsigned threads : {1u, 3u}) {
        StreamOptions opts;
        opts.num_shards = shards;
        opts.num_threads = threads;
        opts.slice_ms = slice_ms;
        opts.spatial = &cfg;
        CellRowSink cap;
        stream_generate(ours_model(), small_request(), opts, cap);
        SCOPED_TRACE("shards=" + std::to_string(shards) +
                     " slice_ms=" + std::to_string(slice_ms) +
                     " threads=" + std::to_string(threads));
        ASSERT_EQ(cap.rows.size(), ref.rows.size());
        EXPECT_TRUE(
            std::equal(cap.rows.begin(), cap.rows.end(), ref.rows.begin()));
      }
    }
  }
}

TEST(Spatial, RunWithoutSpatialCarriesNoCellColumn) {
  StreamOptions opts;
  opts.num_shards = 2;
  bool any = false;
  bool cells = false;
  class Probe final : public EventSink {
   public:
    bool* any;
    bool* cells;
    void on_event(const ControlEvent&) override {}
    void on_event_columns(const EventColumnsView& cols) override {
      if (cols.empty()) return;
      *any = true;
      if (cols.has_cells()) *cells = true;
    }
  } probe;
  probe.any = &any;
  probe.cells = &cells;
  stream_generate(ours_model(), small_request(), opts, probe);
  EXPECT_TRUE(any);
  EXPECT_FALSE(cells);
}

TEST(Spatial, PerCellMetricsAccountForEveryEvent) {
  const spatial::SpatialConfig cfg = spatial::load_spatial("grid:4x4x900");
  obs::Registry registry;
  StreamOptions opts;
  opts.num_shards = 4;
  opts.spatial = &cfg;
  opts.metrics = &registry;
  CountingSink sink;
  const StreamStats stats =
      stream_generate(ours_model(), small_request(), opts, sink);
  std::uint64_t cell_sum = 0;
  std::size_t cell_series = 0;
  for (const obs::FamilySnapshot& fam : registry.snapshot()) {
    if (fam.name != "cpg_spatial_cell_events_total") continue;
    for (const obs::SeriesSnapshot& s : fam.series) {
      cell_sum += s.counter;
      ++cell_series;
    }
  }
  EXPECT_EQ(cell_sum, stats.events);
  EXPECT_GT(cell_series, 1u);
}

}  // namespace
}  // namespace cpg::stream
