// Tests for the streaming generation runtime (src/stream/): the
// determinism contract (streamed == batch, byte-identical, for any shard /
// thread / slice configuration), backpressure behavior under a slow sink,
// CSV sink byte-compatibility, and live MCN ingest parity.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "generator/traffic_generator.h"
#include "io/csv.h"
#include "mcn/simulator.h"
#include "model/fit.h"
#include "stream/csv_sink.h"
#include "stream/mcn_sink.h"
#include "stream/stream_generator.h"
#include "test_util.h"

namespace cpg::stream {
namespace {

const model::ModelSet& ours_model() {
  static const model::ModelSet set = [] {
    model::FitOptions opts;
    opts.method = model::Method::ours;
    opts.clustering.theta_n = 30;
    return model::fit_model(testutil::small_ground_truth(200, 48.0, 11),
                            opts);
  }();
  return set;
}

gen::GenerationRequest small_request() {
  gen::GenerationRequest req;
  req.ue_counts = {120, 50, 30};
  req.start_hour = 10;
  req.duration_hours = 2.0;
  req.seed = 99;
  req.num_threads = 2;
  return req;
}

const Trace& batch_trace() {
  static const Trace t = gen::generate_trace(ours_model(), small_request());
  return t;
}

void expect_identical(const Trace& streamed, const Trace& batch) {
  ASSERT_EQ(streamed.num_ues(), batch.num_ues());
  for (UeId u = 0; u < batch.num_ues(); ++u) {
    ASSERT_EQ(streamed.device(u), batch.device(u));
  }
  ASSERT_TRUE(streamed.finalized());
  ASSERT_EQ(streamed.num_events(), batch.num_events());
  const auto a = streamed.events();
  const auto b = batch.events();
  ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
}

TEST(Stream, ByteIdenticalToBatchAcrossShardsSlicesThreads) {
  const Trace& batch = batch_trace();
  ASSERT_GT(batch.num_events(), 100u);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{8}}) {
    for (const TimeMs slice_ms : {7 * k_ms_per_minute, 25 * k_ms_per_minute}) {
      for (const unsigned threads : {1u, 3u}) {
        StreamOptions opts;
        opts.num_shards = shards;
        opts.num_threads = threads;
        opts.slice_ms = slice_ms;
        CaptureSink cap;
        const StreamStats stats =
            stream_generate(ours_model(), small_request(), opts, cap);
        SCOPED_TRACE("shards=" + std::to_string(shards) +
                     " slice_ms=" + std::to_string(slice_ms) +
                     " threads=" + std::to_string(threads));
        expect_identical(cap.trace(), batch);
        EXPECT_EQ(stats.events, batch.num_events());
        EXPECT_EQ(stats.num_ues, batch.num_ues());
      }
    }
  }
}

TEST(Stream, DeliversInCanonicalOrder) {
  bool ordered = true;
  bool has_prev = false;
  ControlEvent prev{};
  CallbackSink sink([&](const ControlEvent& e) {
    if (has_prev && event_time_less(e, prev)) ordered = false;
    prev = e;
    has_prev = true;
  });
  StreamOptions opts;
  opts.num_shards = 4;
  opts.slice_ms = 10 * k_ms_per_minute;
  stream_generate(ours_model(), small_request(), opts, sink);
  EXPECT_TRUE(ordered);
  EXPECT_TRUE(has_prev);
}

TEST(Stream, BackpressureBoundsBufferingWithoutLossOrDeadlock) {
  // A deliberately slow sink: the bounded queues must absorb the mismatch
  // by blocking producers, never by dropping events or deadlocking.
  constexpr std::size_t k_cap = 256;
  constexpr std::size_t k_shards = 4;
  std::uint64_t received = 0;
  CallbackSink slow([&](const ControlEvent&) {
    if (++received % 64 == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });
  StreamOptions opts;
  opts.num_shards = k_shards;
  opts.num_threads = 4;
  opts.slice_ms = 5 * k_ms_per_minute;
  opts.max_buffered_events = k_cap;
  const StreamStats stats =
      stream_generate(ours_model(), small_request(), opts, slow);

  EXPECT_EQ(received, batch_trace().num_events());  // nothing dropped
  EXPECT_GT(stats.peak_buffered_events, 0u);
  // Hard bound: per queue max(cap, largest single batch); slices here are
  // far smaller than the cap, so the total stays under shards * cap.
  EXPECT_LE(stats.peak_buffered_events, k_shards * k_cap);
}

TEST(Stream, CsvSinkMatchesBatchCsvByteForByte) {
  std::ostringstream batch_events, batch_ues;
  io::write_events_csv(batch_trace(), batch_events);
  io::write_ues_csv(batch_trace(), batch_ues);

  std::ostringstream stream_events, stream_ues;
  CsvSink sink(stream_events, &stream_ues);
  StreamOptions opts;
  opts.num_shards = 3;
  opts.slice_ms = 11 * k_ms_per_minute;
  stream_generate(ours_model(), small_request(), opts, sink);

  EXPECT_EQ(stream_events.str(), batch_events.str());
  EXPECT_EQ(stream_ues.str(), batch_ues.str());
}

TEST(Stream, LiveMcnIngestMatchesBatchSimulation) {
  mcn::SimulationConfig cfg;
  cfg.nfs[index_of(mcn::NetworkFunction::mme)].workers = 2;
  const mcn::SimulationResult batch = mcn::simulate(batch_trace(), cfg);

  McnLiveSink sink(cfg);
  StreamOptions opts;
  opts.num_shards = 4;
  stream_generate(ours_model(), small_request(), opts, sink);
  const mcn::SimulationResult& live = sink.result();

  EXPECT_EQ(live.procedures, batch.procedures);
  EXPECT_EQ(live.messages, batch.messages);
  EXPECT_DOUBLE_EQ(live.latency_us.mean, batch.latency_us.mean);
  EXPECT_DOUBLE_EQ(live.makespan_s, batch.makespan_s);
  for (std::size_t n = 0; n < mcn::k_num_nfs; ++n) {
    EXPECT_EQ(live.nf[n].messages, batch.nf[n].messages);
  }
}

TEST(Stream, AcceleratedClockPacesDelivery) {
  // 2 trace hours at 18000x ≈ 400 ms of wall time: fast enough for a test,
  // slow enough to prove the pacer actually waits.
  CountingSink sink;
  StreamOptions opts;
  opts.num_shards = 2;
  opts.clock = ClockMode::accelerated;
  opts.accel_factor = 18'000.0;
  const auto t0 = std::chrono::steady_clock::now();
  stream_generate(ours_model(), small_request(), opts, sink);
  const auto wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(sink.total(), batch_trace().num_events());
  EXPECT_GE(wall, 0.1);  // the span between first and last event, scaled
}

TEST(Stream, EmptyPopulationStillOpensAndClosesStream) {
  gen::GenerationRequest req;  // all counts zero
  bool started = false;
  bool finished = false;
  class Probe final : public EventSink {
   public:
    Probe(bool& started, bool& finished)
        : started_(started), finished_(finished) {}
    void on_start(const StreamHeader& h) override {
      started_ = h.ue_devices.empty();
    }
    void on_event(const ControlEvent&) override { FAIL(); }
    void on_finish() override { finished_ = true; }

   private:
    bool& started_;
    bool& finished_;
  } probe(started, finished);
  const StreamStats stats =
      stream_generate(ours_model(), req, StreamOptions{}, probe);
  EXPECT_TRUE(started);
  EXPECT_TRUE(finished);
  EXPECT_EQ(stats.events, 0u);
}

}  // namespace
}  // namespace cpg::stream
