// Tests for the cpgt columnar binary trace format (src/trace_fmt/) and the
// BinarySink built on it: primitive codecs, file round trips, the one-line
// corruption diagnostics, retry safety under the resilient sink, checkpoint
// kill/resume, and the cpgt <-> CSV byte-identity the converter guarantees.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/trace.h"
#include "fault/failpoint.h"
#include "io/csv.h"
#include "io/file_util.h"
#include "stream/binary_sink.h"
#include "stream/csv_sink.h"
#include "stream/event_sink.h"
#include "stream/resilient_sink.h"
#include "test_util.h"
#include "trace_fmt/cpgt.h"
#include "trace_fmt/reader.h"
#include "trace_fmt/salvage.h"
#include "trace_fmt/writer.h"

namespace cpg {
namespace {

namespace tf = trace_fmt;

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

TEST(CpgtPrimitives, ZigzagRoundTrip) {
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1}, std::int64_t{2},
        std::int64_t{-2}, std::int64_t{123456789}, std::int64_t{-987654321},
        std::numeric_limits<std::int64_t>::max(),
        std::numeric_limits<std::int64_t>::min()}) {
    EXPECT_EQ(tf::zigzag_decode(tf::zigzag_encode(v)), v) << v;
  }
  // Small magnitudes map to small codes (the property the ts column needs).
  EXPECT_EQ(tf::zigzag_encode(0), 0u);
  EXPECT_EQ(tf::zigzag_encode(-1), 1u);
  EXPECT_EQ(tf::zigzag_encode(1), 2u);
}

TEST(CpgtPrimitives, VarintRoundTrip) {
  std::string buf;
  const std::vector<std::uint64_t> values = {
      0,   1,    127,  128,   255,    16383, 16384,
      1u << 20, std::uint64_t{1} << 35, ~std::uint64_t{0}};
  for (const std::uint64_t v : values) tf::put_varint(buf, v);
  std::size_t pos = 0;
  for (const std::uint64_t v : values) {
    EXPECT_EQ(tf::get_varint(buf, pos), v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(CpgtPrimitives, VarintTruncatedThrows) {
  std::string buf;
  tf::put_varint(buf, 1u << 20);
  buf.pop_back();
  std::size_t pos = 0;
  EXPECT_THROW(tf::get_varint(buf, pos), std::runtime_error);
}

TEST(CpgtPrimitives, Crc32KnownVector) {
  // IEEE CRC32 of "123456789" — the standard check value.
  EXPECT_EQ(tf::crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(tf::crc32(""), 0u);
}

TEST(CpgtPrimitives, FingerprintSensitivity) {
  const std::vector<DeviceType> a{DeviceType::phone, DeviceType::tablet};
  const std::vector<DeviceType> b{DeviceType::tablet, DeviceType::phone};
  const std::uint64_t fa = tf::run_fingerprint(a, 0, 1000);
  EXPECT_NE(fa, tf::run_fingerprint(b, 0, 1000));   // registry order
  EXPECT_NE(fa, tf::run_fingerprint(a, 0, 2000));   // window
  EXPECT_EQ(fa, tf::run_fingerprint(a, 0, 1000));   // deterministic
}

// ---------------------------------------------------------------------------
// Writer / reader round trips
// ---------------------------------------------------------------------------

class CpgtFile : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/cpg_trace_fmt_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::filesystem::remove_all(dir_);
    fault::disarm_all();
  }
  std::string path(const std::string& name) const { return dir_ + "/" + name; }
  std::string dir_;
};

std::vector<ControlEvent> make_events(std::size_t n, std::size_t num_ues,
                                      TimeMs t0 = 1000) {
  std::vector<ControlEvent> evs;
  evs.reserve(n);
  TimeMs t = t0;
  for (std::size_t i = 0; i < n; ++i) {
    t += static_cast<TimeMs>((i * 37) % 2000);
    evs.push_back({t, static_cast<UeId>(i % num_ues),
                   k_all_event_types[i % k_num_event_types]});
  }
  return evs;
}

TEST_F(CpgtFile, WriterReaderRoundTripManyBlocks) {
  const std::vector<DeviceType> devices{
      DeviceType::phone, DeviceType::phone, DeviceType::connected_car,
      DeviceType::tablet};
  const std::vector<ControlEvent> evs = make_events(10'000, devices.size());

  tf::TraceWriter::Options opts;
  opts.block_events = 256;  // force ~40 blocks
  tf::TraceWriter writer(path("t.cpgt"), opts);
  writer.begin(devices, 0, 3'600'000);
  // Append in uneven chunks to exercise block cutting across appends.
  std::size_t i = 0;
  for (const std::size_t chunk : {1uz, 100uz, 999uz, 3000uz}) {
    writer.append({evs.data() + i, chunk});
    i += chunk;
  }
  writer.append({evs.data() + i, evs.size() - i});
  writer.finish();

  tf::TraceReader reader(path("t.cpgt"));
  EXPECT_EQ(reader.devices(), devices);
  EXPECT_EQ(reader.fingerprint(), tf::run_fingerprint(devices, 0, 3'600'000));
  std::vector<ControlEvent> got, block;
  while (reader.next_events(block)) {
    got.insert(got.end(), block.begin(), block.end());
  }
  EXPECT_EQ(reader.total_events(), evs.size());
  EXPECT_EQ(got, evs);
}

// ---------------------------------------------------------------------------
// Cross-version: v1 (plain) and v2 (spatial) files through one reader
// ---------------------------------------------------------------------------

TEST_F(CpgtFile, PlainWriterStillEmitsVersion1) {
  // A run without the spatial layer must keep producing files older builds
  // (and old fixtures) can read: format version 1, no spatial block.
  const std::vector<DeviceType> devices{DeviceType::phone,
                                        DeviceType::tablet};
  tf::TraceWriter writer(path("v1.cpgt"));
  writer.begin(devices, 0, 1000);
  const std::vector<ControlEvent> evs = make_events(100, devices.size());
  writer.append(evs);
  writer.finish();

  tf::TraceReader reader(path("v1.cpgt"));
  EXPECT_EQ(reader.version(), 1u);
  EXPECT_FALSE(reader.has_spatial());
  std::vector<ControlEvent> block;
  while (reader.next_events(block)) {
    // A v1 file has no cell column to surface.
    EXPECT_TRUE(reader.cells().empty());
  }
  EXPECT_EQ(reader.total_events(), evs.size());
}

TEST_F(CpgtFile, SpatialRoundTripCarriesCellsPerBlock) {
  const std::vector<DeviceType> devices{
      DeviceType::phone, DeviceType::phone, DeviceType::connected_car,
      DeviceType::tablet};
  const std::vector<ControlEvent> evs = make_events(5'000, devices.size());
  std::vector<TimeMs> ts;
  std::vector<UeId> ue;
  std::vector<EventType> type;
  std::vector<std::uint32_t> cell;
  for (std::size_t i = 0; i < evs.size(); ++i) {
    ts.push_back(evs[i].t_ms);
    ue.push_back(evs[i].ue_id);
    type.push_back(evs[i].type);
    cell.push_back(static_cast<std::uint32_t>((i * 31) % 64));
  }

  tf::SpatialInfo sp;
  sp.cols = 8;
  sp.rows = 8;
  sp.cell_m = 250.0;
  sp.wrap = true;
  sp.ta_block = 4;
  sp.fingerprint = 0xabcdef12u;

  tf::TraceWriter::Options opts;
  opts.block_events = 256;  // many events+cells block pairs
  tf::TraceWriter writer(path("v2.cpgt"), opts);
  writer.begin(devices, 0, 3'600'000, &sp);
  // Uneven chunks to exercise cell buffering across block cuts.
  std::size_t i = 0;
  for (const std::size_t chunk : {1uz, 700uz, 2999uz}) {
    writer.append(EventColumnsView{ts.data() + i, ue.data() + i,
                                   type.data() + i, chunk, cell.data() + i});
    i += chunk;
  }
  writer.append(EventColumnsView{ts.data() + i, ue.data() + i,
                                 type.data() + i, evs.size() - i,
                                 cell.data() + i});
  writer.finish();

  tf::TraceReader reader(path("v2.cpgt"));
  EXPECT_EQ(reader.version(), 2u);
  ASSERT_TRUE(reader.has_spatial());
  EXPECT_EQ(reader.spatial(), sp);
  std::vector<ControlEvent> got, block;
  std::vector<std::uint32_t> got_cells;
  while (reader.next_events(block)) {
    ASSERT_EQ(reader.cells().size(), block.size());
    got.insert(got.end(), block.begin(), block.end());
    got_cells.insert(got_cells.end(), reader.cells().begin(),
                     reader.cells().end());
  }
  EXPECT_EQ(got, evs);
  EXPECT_EQ(got_cells, cell);
}

TEST_F(CpgtFile, SpatialAndPlainFilesAgreeOnEvents) {
  // The cell column is strictly additive: the same event sequence written
  // with and without a spatial block decodes to the same events.
  const std::vector<DeviceType> devices{DeviceType::phone};
  const std::vector<ControlEvent> evs = make_events(1'000, 1);
  std::vector<TimeMs> ts;
  std::vector<UeId> ue;
  std::vector<EventType> type;
  const std::vector<std::uint32_t> cell(evs.size(), 7);
  for (const ControlEvent& e : evs) {
    ts.push_back(e.t_ms);
    ue.push_back(e.ue_id);
    type.push_back(e.type);
  }

  tf::TraceWriter plain(path("plain.cpgt"));
  plain.begin(devices, 0, 1000);
  plain.append(evs);
  plain.finish();

  tf::SpatialInfo sp;
  sp.cols = 4;
  sp.rows = 4;
  sp.cell_m = 100.0;
  sp.fingerprint = 1;
  tf::TraceWriter spatial(path("spatial.cpgt"), {});
  spatial.begin(devices, 0, 1000, &sp);
  spatial.append(
      EventColumnsView{ts.data(), ue.data(), type.data(), ts.size(),
                       cell.data()});
  spatial.finish();

  const Trace a = tf::read_trace_cpgt(path("plain.cpgt"));
  const Trace b = tf::read_trace_cpgt(path("spatial.cpgt"));
  ASSERT_EQ(a.num_events(), b.num_events());
  const auto ea = a.events();
  const auto eb = b.events();
  EXPECT_TRUE(std::equal(ea.begin(), ea.end(), eb.begin()));
  // And the two headers differ exactly in version.
  EXPECT_EQ(tf::TraceReader(path("plain.cpgt")).version(), 1u);
  EXPECT_EQ(tf::TraceReader(path("spatial.cpgt")).version(), 2u);
}

TEST_F(CpgtFile, EmptyTraceRoundTrip) {
  tf::TraceWriter writer(path("empty.cpgt"));
  writer.begin({}, 0, 0);
  writer.finish();
  const Trace t = tf::read_trace_cpgt(path("empty.cpgt"));
  EXPECT_EQ(t.num_ues(), 0u);
  EXPECT_EQ(t.num_events(), 0u);
}

TEST_F(CpgtFile, UnsortedTimestampsSurvive) {
  // Foreign CSV imports need not be sorted; zigzag handles regressions.
  const std::vector<DeviceType> devices{DeviceType::phone};
  std::vector<ControlEvent> evs{{5000, 0, EventType::atch},
                                {100, 0, EventType::ho},
                                {99999, 0, EventType::tau},
                                {0, 0, EventType::dtch}};
  tf::TraceWriter writer(path("u.cpgt"));
  writer.begin(devices, 0, 0);
  writer.append(evs);
  writer.finish();
  tf::TraceReader reader(path("u.cpgt"));
  std::vector<ControlEvent> block;
  ASSERT_TRUE(reader.next_events(block));
  EXPECT_EQ(block, evs);
}

// ---------------------------------------------------------------------------
// Corruption diagnostics
// ---------------------------------------------------------------------------

class CpgtCorruption : public CpgtFile {
 protected:
  // A small valid file to mutilate per test.
  std::string write_valid() {
    const std::string p = path("victim.cpgt");
    tf::TraceWriter::Options opts;
    opts.block_events = 64;
    const std::vector<DeviceType> devices{DeviceType::phone,
                                          DeviceType::tablet};
    tf::TraceWriter writer(p, opts);
    writer.begin(devices, 0, 1000);
    const auto evs = make_events(300, 2);
    writer.append(evs);
    writer.finish();
    return p;
  }

  static std::string slurp(const std::string& p) { return io::read_file(p); }

  static void spit(const std::string& p, const std::string& data) {
    std::ofstream os(p, std::ios::binary | std::ios::trunc);
    os << data;
    ASSERT_TRUE(os.good());
  }

  static std::string error_of(const std::string& p) {
    try {
      Trace t = tf::read_trace_cpgt(p);
    } catch (const std::runtime_error& e) {
      return e.what();
    }
    return {};
  }
};

TEST_F(CpgtCorruption, TruncatedBlockIsTornFile) {
  const std::string p = write_valid();
  std::string data = slurp(p);
  data.resize(data.size() - 37);  // cut into the trailing blocks
  spit(p, data);
  const std::string err = error_of(p);
  EXPECT_NE(err.find("truncated block"), std::string::npos) << err;
  EXPECT_NE(err.find("resume the run or regenerate"), std::string::npos)
      << err;
  EXPECT_NE(err.find(p), std::string::npos) << err;  // names the file
}

TEST_F(CpgtCorruption, MissingEndBlockIsTornFile) {
  const std::string p = write_valid();
  std::string data = slurp(p);
  // Remove exactly the end block (8-byte payload + frame) — a writer killed
  // between the last events block and finish().
  data.resize(data.size() - (tf::k_block_head_bytes + 8 + tf::k_crc_bytes));
  spit(p, data);
  const std::string err = error_of(p);
  EXPECT_NE(err.find("truncated block"), std::string::npos) << err;
}

TEST_F(CpgtCorruption, FlippedBitFailsCrc) {
  const std::string p = write_valid();
  std::string data = slurp(p);
  data[data.size() / 2] ^= 0x04;  // flip one bit mid-file
  spit(p, data);
  const std::string err = error_of(p);
  EXPECT_NE(err.find("CRC mismatch"), std::string::npos) << err;
  EXPECT_NE(err.find("byte offset"), std::string::npos) << err;
}

TEST_F(CpgtCorruption, NewerVersionIsActionable) {
  const std::string p = write_valid();
  std::string data = slurp(p);
  data[4] = static_cast<char>(tf::k_version + 1);  // bump the version field
  spit(p, data);
  const std::string err = error_of(p);
  EXPECT_NE(err.find("newer than this build"), std::string::npos) << err;
  EXPECT_NE(err.find("trace_cat"), std::string::npos) << err;
}

TEST_F(CpgtCorruption, BadMagicIsNotACpgtFile) {
  const std::string p = path("not_cpgt");
  spit(p, "t_ms,ue_id,event\n100,0,ATCH\n");
  const std::string err = error_of(p);
  EXPECT_NE(err.find("bad magic"), std::string::npos) << err;
}

TEST_F(CpgtCorruption, TrailingGarbageRejected) {
  const std::string p = write_valid();
  std::string data = slurp(p);
  data += "garbage";
  spit(p, data);
  const std::string err = error_of(p);
  EXPECT_NE(err.find("trailing data"), std::string::npos) << err;
}

// ---------------------------------------------------------------------------
// Salvage: recover the valid prefix of a torn file (trace_cat salvage)
// ---------------------------------------------------------------------------

class CpgtSalvage : public CpgtCorruption {
 protected:
  // All events write_valid() encodes, for prefix comparison.
  static std::vector<ControlEvent> valid_events() {
    return make_events(300, 2);
  }

  // Reads every event of a (salvaged) file back.
  static std::vector<ControlEvent> read_all(const std::string& p) {
    tf::TraceReader reader(p);
    std::vector<ControlEvent> got, block;
    while (reader.next_events(block)) {
      got.insert(got.end(), block.begin(), block.end());
    }
    return got;
  }
};

TEST_F(CpgtSalvage, IntactFileSalvagesToAnEquivalentFile) {
  const std::string p = write_valid();
  const std::string out = path("intact_out.cpgt");
  const tf::SalvageResult r = tf::salvage_trace(p, out);
  EXPECT_TRUE(r.intact);
  EXPECT_TRUE(r.failure.empty()) << r.failure;
  EXPECT_EQ(r.dropped_bytes, 0u);
  EXPECT_EQ(r.events_recovered, 300u);
  EXPECT_EQ(r.ues_recovered, 2u);
  EXPECT_EQ(read_all(out), valid_events());
  tf::TraceReader reader(out);
  EXPECT_EQ(reader.fingerprint(), tf::TraceReader(p).fingerprint());
}

TEST_F(CpgtSalvage, TruncationMidBlockRecoversTheValidPrefix) {
  const std::string p = write_valid();
  std::string data = slurp(p);
  data.resize(data.size() - 37);  // tear into the trailing blocks
  spit(p, data);
  const std::string out = path("torn_out.cpgt");
  const tf::SalvageResult r = tf::salvage_trace(p, out);
  EXPECT_FALSE(r.intact);
  EXPECT_NE(r.failure.find("truncated block"), std::string::npos)
      << r.failure;
  EXPECT_GT(r.dropped_bytes, 0u);
  EXPECT_LT(r.valid_bytes, data.size());
  // The recovered events are an exact prefix of the original stream, and
  // the salvaged file reads cleanly end to end.
  const std::vector<ControlEvent> got = read_all(out);
  const std::vector<ControlEvent> want = valid_events();
  ASSERT_EQ(got.size(), r.events_recovered);
  ASSERT_GT(got.size(), 0u);
  ASSERT_LT(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "salvaged prefix diverges at " << i;
  }
  // The fingerprint (resume/append identity) survives salvage.
  const std::vector<DeviceType> devices{DeviceType::phone,
                                        DeviceType::tablet};
  EXPECT_EQ(tf::TraceReader(out).fingerprint(),
            tf::run_fingerprint(devices, 0, 1000));
}

TEST_F(CpgtSalvage, CutOnABlockBoundaryKeepsEveryEvent) {
  const std::string p = write_valid();
  std::string data = slurp(p);
  // Remove exactly the end block: a writer killed between its last events
  // block and finish(). Every event is still recoverable.
  data.resize(data.size() - (tf::k_block_head_bytes + 8 + tf::k_crc_bytes));
  spit(p, data);
  const std::string out = path("boundary_out.cpgt");
  const tf::SalvageResult r = tf::salvage_trace(p, out);
  EXPECT_FALSE(r.intact);
  EXPECT_NE(r.failure.find("missing end block"), std::string::npos)
      << r.failure;
  EXPECT_EQ(r.events_recovered, 300u);
  EXPECT_EQ(r.dropped_bytes, 0u);
  EXPECT_EQ(read_all(out), valid_events());
}

TEST_F(CpgtSalvage, CrcFailureStopsTheScanAtTheCorruptBlock) {
  const std::string p = write_valid();
  std::string data = slurp(p);
  data[data.size() / 2] ^= 0x04;  // flip one bit mid-file
  spit(p, data);
  const std::string out = path("crc_out.cpgt");
  const tf::SalvageResult r = tf::salvage_trace(p, out);
  EXPECT_FALSE(r.intact);
  EXPECT_NE(r.failure.find("CRC mismatch"), std::string::npos) << r.failure;
  EXPECT_GT(r.dropped_bytes, 0u);
  const std::vector<ControlEvent> got = read_all(out);
  const std::vector<ControlEvent> want = valid_events();
  ASSERT_EQ(got.size(), r.events_recovered);
  ASSERT_LT(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]);
  }
}

TEST_F(CpgtSalvage, TrailingGarbageAfterTheEndBlockIsDropped) {
  const std::string p = write_valid();
  std::string data = slurp(p);
  data += "garbage";  // an interrupted append after a clean finish
  spit(p, data);
  const std::string out = path("trail_out.cpgt");
  const tf::SalvageResult r = tf::salvage_trace(p, out);
  EXPECT_FALSE(r.intact);
  EXPECT_NE(r.failure.find("trailing bytes after the end block"),
            std::string::npos)
      << r.failure;
  EXPECT_EQ(r.events_recovered, 300u);
  EXPECT_EQ(r.dropped_bytes, std::string("garbage").size());
  EXPECT_EQ(read_all(out), valid_events());
}

TEST_F(CpgtSalvage, UnusableHeaderIsNotSalvageable) {
  const std::string p = path("stub.cpgt");
  spit(p, "cpgt");  // truncated inside the 16-byte header
  EXPECT_THROW(tf::salvage_trace(p, path("stub_out.cpgt")),
               std::runtime_error);
  const std::string csv = path("not_cpgt.csv");
  spit(csv, "t_ms,ue_id,event\n100,0,ATCH\n");
  EXPECT_THROW(tf::salvage_trace(csv, path("csv_out.cpgt")),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// BinarySink: delivery, checkpoint kill/resume, retry safety
// ---------------------------------------------------------------------------

stream::StreamHeader header_for(const std::vector<DeviceType>& devices,
                                TimeMs t_begin, TimeMs t_end) {
  stream::StreamHeader h;
  h.ue_devices = devices;
  h.t_begin = t_begin;
  h.t_end = t_end;
  return h;
}

TEST_F(CpgtFile, BinarySinkWritesReadableFile) {
  const std::vector<DeviceType> devices{DeviceType::phone, DeviceType::tablet};
  const auto evs = make_events(5000, devices.size());
  stream::BinarySink sink(path("run"), /*block_events=*/512);
  sink.on_start(header_for(devices, 0, 1000));
  sink.on_events({evs.data(), 2000});
  sink.on_events({evs.data() + 2000, 3000});
  sink.on_finish();
  EXPECT_EQ(sink.events_written(), evs.size());
  // The tmp staging file is gone; the final file parses.
  EXPECT_FALSE(std::filesystem::exists(path("run.cpgt.tmp")));
  const Trace t = tf::read_trace_cpgt(path("run.cpgt"));
  EXPECT_EQ(t.num_events(), evs.size());
}

TEST_F(CpgtFile, BinarySinkCheckpointKillResume) {
  const std::vector<DeviceType> devices{DeviceType::phone};
  const auto evs = make_events(4000, 1);
  const auto header = header_for(devices, 0, 1000);

  // Reference: one uninterrupted run.
  {
    stream::BinarySink ref(path("ref"), 128);
    ref.on_start(header);
    ref.on_events(evs);
    ref.on_finish();
  }

  // Killed run: deliver a prefix, checkpoint, deliver more (lost on kill).
  std::string token;
  {
    stream::BinarySink sink(path("killed"), 128);
    sink.on_start(header);
    sink.on_events({evs.data(), 1500});
    token = sink.checkpoint_save();
    sink.on_events({evs.data() + 1500, 1000});
    // The sink dies here (no on_finish): the tmp file holds uncommitted
    // blocks past the token offset.
  }
  ASSERT_FALSE(token.empty());

  // Resume: truncate back to the token, re-deliver the tail.
  {
    stream::BinarySink sink(path("killed"), 128);
    sink.checkpoint_resume(token, header);
    sink.on_events({evs.data() + 1500, evs.size() - 1500});
    sink.on_finish();
  }

  // The resumed file converts to the same trace as the reference. (Block
  // boundaries may differ — identity is of the *decoded* stream.)
  const Trace a = tf::read_trace_cpgt(path("ref.cpgt"));
  const Trace b = tf::read_trace_cpgt(path("killed.cpgt"));
  ASSERT_EQ(a.num_events(), b.num_events());
  EXPECT_TRUE(std::equal(a.events().begin(), a.events().end(),
                         b.events().begin()));
}

TEST_F(CpgtFile, BinarySinkResumeRejectsForeignFile) {
  const std::vector<DeviceType> devices{DeviceType::phone};
  const auto header = header_for(devices, 0, 1000);
  std::string token;
  {
    stream::BinarySink sink(path("a"));
    sink.on_start(header);
    sink.on_events(make_events(10, 1));
    token = sink.checkpoint_save();
  }
  // Same token against a *different* run configuration: the fingerprint in
  // the on-disk header no longer matches.
  const std::vector<DeviceType> other_devices{DeviceType::tablet,
                                              DeviceType::phone};
  const auto other = header_for(other_devices, 0, 9999);
  stream::BinarySink sink(path("a"));
  try {
    sink.checkpoint_resume(token, other);
    FAIL() << "resume against a foreign file must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("fingerprint mismatch"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(CpgtFile, BinarySinkRetrySafeUnderResilientSink) {
  // Fail the 3rd..5th block writes; the resilient sink must retry the same
  // span and the file must come out with no duplicated and no lost events.
  const std::vector<DeviceType> devices{DeviceType::phone};
  const auto evs = make_events(6000, 1);

  stream::BinarySink sink(path("retry"), /*block_events=*/256);
  stream::ResilientSinkOptions opts;
  opts.policy = stream::SinkPolicy::fail;
  opts.retry.max_attempts = 4;
  stream::FakeRetryClock clock;
  stream::ResilientSink supervised(sink, opts, &clock);

  fault::FailpointSpec spec;
  spec.action = fault::Action::error;
  spec.probability = 1.0;
  spec.skip = 3;       // let header/ues + first blocks through
  spec.max_fires = 3;  // then fail three consecutive write attempts
  fault::arm("cpgt.write_block", spec);

  supervised.on_start(header_for(devices, 0, 1000));
  // Deliver in spans smaller than a multiple of the block size, so failures
  // land mid-span as well as at span boundaries.
  std::size_t i = 0;
  while (i < evs.size()) {
    const std::size_t n = std::min<std::size_t>(700, evs.size() - i);
    supervised.on_events({evs.data() + i, n});
    i += n;
  }
  supervised.on_finish();
  fault::disarm_all();

  EXPECT_GT(supervised.stats().retries, 0u);
  EXPECT_EQ(supervised.stats().dropped_events, 0u);
  const Trace t = tf::read_trace_cpgt(path("retry.cpgt"));
  ASSERT_EQ(t.num_events(), evs.size());
  EXPECT_TRUE(
      std::equal(t.events().begin(), t.events().end(), evs.begin()));
}

// ---------------------------------------------------------------------------
// cpgt <-> CSV byte identity (the trace_cat contract, exercised in-process)
// ---------------------------------------------------------------------------

// Writes `trace` through both sinks and checks the cpgt file re-encodes to
// the exact CSV bytes — the invariant `trace_cat to-csv` relies on.
void expect_csv_cpgt_identity(const Trace& trace, const std::string& prefix) {
  stream::StreamHeader header;
  header.ue_devices = trace.devices();
  header.t_begin = trace.empty() ? 0 : trace.begin_time();
  header.t_end = trace.empty() ? 0 : trace.end_time();

  stream::CsvSink csv(prefix + "_csv");
  csv.on_start(header);
  csv.on_events(trace.events());
  csv.on_finish();

  stream::BinarySink bin(prefix + "_bin", 1000);
  bin.on_start(header);
  bin.on_events(trace.events());
  bin.on_finish();

  // Re-encode the cpgt file as CSV (what trace_cat to-csv does).
  tf::TraceReader reader(prefix + "_bin.cpgt");
  std::ostringstream ues, events;
  io::write_ues_csv_header(ues);
  for (std::size_t u = 0; u < reader.devices().size(); ++u) {
    io::append_ue_csv(ues, static_cast<UeId>(u), reader.devices()[u]);
  }
  io::write_events_csv_header(events);
  std::vector<ControlEvent> block;
  while (reader.next_events(block)) {
    for (const ControlEvent& e : block) io::append_event_csv(events, e);
  }

  EXPECT_EQ(events.str(), io::read_file(prefix + "_csv_events.csv"));
  EXPECT_EQ(ues.str(), io::read_file(prefix + "_csv_ues.csv"));
}

TEST_F(CpgtFile, CsvIdentityOverGroundTruthTraces) {
  // Property over several synthetic populations (different seeds => churn
  // in event mix, timestamps, and registry composition).
  for (const std::uint64_t seed : {7u, 19u, 311u}) {
    const Trace t = testutil::small_ground_truth(60, 6.0, seed);
    ASSERT_GT(t.num_events(), 0u);
    expect_csv_cpgt_identity(t, path("gt" + std::to_string(seed)));
  }
}

// ---------------------------------------------------------------------------
// io::write_file_atomic
// ---------------------------------------------------------------------------

TEST_F(CpgtFile, WriteFileAtomicReplaces) {
  const std::string p = path("atomic.txt");
  io::write_file_atomic(p, "first");
  EXPECT_EQ(io::read_file(p), "first");
  io::write_file_atomic(p, "second, longer payload");
  EXPECT_EQ(io::read_file(p), "second, longer payload");
  EXPECT_FALSE(std::filesystem::exists(p + ".tmp"));
}

TEST_F(CpgtFile, WriteFileAtomicFailpointLeavesOldFile) {
  const std::string p = path("atomic.txt");
  io::write_file_atomic(p, "keep me");
  fault::FailpointSpec spec;
  spec.action = fault::Action::error;
  fault::arm("io.write_file", spec);
  EXPECT_THROW(io::write_file_atomic(p, "never lands"), fault::InjectedFault);
  fault::disarm_all();
  EXPECT_EQ(io::read_file(p), "keep me");
}

}  // namespace
}  // namespace cpg
