// Tests for the spatial layer (src/spatial/): grid topology and tracking
// areas, spec parsing and fingerprinting, point-process placement,
// trajectory determinism (the lazy-advance property that makes cell
// assignment independent of query granularity — and with it of any
// shard/thread/slice/rank split), and event spatialization.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/event_columns.h"
#include "core/time_utils.h"
#include "spatial/config.h"
#include "spatial/grid.h"
#include "spatial/motion.h"
#include "spatial/spatializer.h"

namespace cpg::spatial {
namespace {

CellGrid grid_4x3(bool wrap = false) {
  CellGrid g;
  g.cols = 4;
  g.rows = 3;
  g.cell_m = 100.0;
  g.wrap = wrap;
  g.ta_block = 2;
  return g;
}

TEST(SpatialGrid, CellIdsAreRowMajor) {
  const CellGrid g = grid_4x3();
  EXPECT_EQ(g.num_cells(), 12u);
  EXPECT_EQ(g.cell_at({50.0, 50.0}), 0u);
  EXPECT_EQ(g.cell_at({350.0, 50.0}), 3u);
  EXPECT_EQ(g.cell_at({50.0, 250.0}), 8u);
  EXPECT_EQ(g.cell_at({350.0, 250.0}), 11u);
}

TEST(SpatialGrid, ClipClampsOutOfRangePositions) {
  const CellGrid g = grid_4x3(false);
  EXPECT_EQ(g.cell_at({-1000.0, -1000.0}), 0u);
  EXPECT_EQ(g.cell_at({1e9, 1e9}), 11u);
  // The exact extent is outside the half-open domain.
  EXPECT_EQ(g.cell_at({g.width(), g.height()}), 11u);
}

TEST(SpatialGrid, WrapIsToroidal) {
  const CellGrid g = grid_4x3(true);
  EXPECT_EQ(g.cell_at({50.0 + g.width(), 50.0}), 0u);
  EXPECT_EQ(g.cell_at({-50.0, 50.0}), 3u);
  EXPECT_EQ(g.cell_at({50.0, -50.0}), 8u);
}

TEST(SpatialGrid, NeighborCountsClipVsWrap) {
  const CellGrid clip = grid_4x3(false);
  std::uint32_t nb[8];
  EXPECT_EQ(clip.neighbors(0, nb), 3u);   // corner
  EXPECT_EQ(clip.neighbors(1, nb), 5u);   // edge
  EXPECT_EQ(clip.neighbors(5, nb), 8u);   // interior
  const CellGrid wrap = grid_4x3(true);
  for (std::uint32_t c = 0; c < wrap.num_cells(); ++c) {
    EXPECT_EQ(wrap.neighbors(c, nb), 8u) << "cell " << c;
  }
}

TEST(SpatialGrid, NeighborsAreAdjacent) {
  const CellGrid g = grid_4x3(false);
  std::uint32_t nb[8];
  for (std::uint32_t c = 0; c < g.num_cells(); ++c) {
    const std::uint32_t n = g.neighbors(c, nb);
    for (std::uint32_t i = 0; i < n; ++i) {
      const int dc = static_cast<int>(nb[i] % g.cols) -
                     static_cast<int>(c % g.cols);
      const int dr = static_cast<int>(nb[i] / g.cols) -
                     static_cast<int>(c / g.cols);
      EXPECT_LE(std::abs(dc), 1);
      EXPECT_LE(std::abs(dr), 1);
      EXPECT_NE(nb[i], c);
    }
  }
}

TEST(SpatialGrid, TrackingAreasAreSquareBlocks) {
  const CellGrid g = grid_4x3();  // ta_block = 2 -> 2x2 TA grid
  EXPECT_EQ(g.ta_of(0), 0u);
  EXPECT_EQ(g.ta_of(1), 0u);
  EXPECT_EQ(g.ta_of(2), 1u);
  EXPECT_EQ(g.ta_of(4), 0u);   // row 1 col 0
  EXPECT_EQ(g.ta_of(8), 2u);   // row 2 col 0
  EXPECT_EQ(g.ta_of(11), 3u);  // row 2 col 3
  CellGrid one = g;
  one.ta_block = 0;
  for (std::uint32_t c = 0; c < one.num_cells(); ++c) {
    EXPECT_EQ(one.ta_of(c), 0u);
  }
}

TEST(SpatialConfig, ParsesEveryDirective) {
  std::istringstream in(R"(# comment
grid 16 8 250 wrap
ta 4
place tablet thomas 12 80
mobility phone waypoint 1 2 30
mobility connected_car commuter 15 8 17
mobility tablet static
)");
  const SpatialConfig cfg = parse_spatial_spec(in, "<test>");
  EXPECT_EQ(cfg.grid.cols, 16u);
  EXPECT_EQ(cfg.grid.rows, 8u);
  EXPECT_DOUBLE_EQ(cfg.grid.cell_m, 250.0);
  EXPECT_TRUE(cfg.grid.wrap);
  EXPECT_EQ(cfg.grid.ta_block, 4u);
  EXPECT_EQ(cfg.placement_of(DeviceType::tablet).kind,
            PlacementSpec::Kind::thomas);
  EXPECT_EQ(cfg.placement_of(DeviceType::tablet).clusters, 12u);
  EXPECT_DOUBLE_EQ(cfg.placement_of(DeviceType::tablet).sigma_m, 80.0);
  EXPECT_EQ(cfg.placement_of(DeviceType::phone).kind,
            PlacementSpec::Kind::uniform);
  EXPECT_EQ(cfg.mobility_of(DeviceType::phone).kind,
            MobilitySpec::Kind::waypoint);
  EXPECT_EQ(cfg.mobility_of(DeviceType::connected_car).kind,
            MobilitySpec::Kind::commuter);
  EXPECT_EQ(cfg.mobility_of(DeviceType::tablet).kind,
            MobilitySpec::Kind::static_);
}

TEST(SpatialConfig, SynthesizedGridFlagForm) {
  const SpatialConfig cfg = load_spatial("grid:6x5x200:wrap");
  EXPECT_EQ(cfg.grid.cols, 6u);
  EXPECT_EQ(cfg.grid.rows, 5u);
  EXPECT_DOUBLE_EQ(cfg.grid.cell_m, 200.0);
  EXPECT_TRUE(cfg.grid.wrap);
  // Defaults: phones walk, cars drive, tablets sit still.
  EXPECT_EQ(cfg.mobility_of(DeviceType::phone).kind,
            MobilitySpec::Kind::waypoint);
  EXPECT_EQ(cfg.mobility_of(DeviceType::connected_car).kind,
            MobilitySpec::Kind::waypoint);
  EXPECT_EQ(cfg.mobility_of(DeviceType::tablet).kind,
            MobilitySpec::Kind::static_);
}

TEST(SpatialConfig, RejectsMalformedInput) {
  const auto reject = [](const std::string& text) {
    std::istringstream in(text);
    EXPECT_THROW(parse_spatial_spec(in, "<test>"), SpatialError) << text;
  };
  reject("grid 0 4 100\n");
  reject("grid 4 4 -5\n");
  reject("grid 4 4 100 banana\n");
  reject("place laptop uniform\n");
  reject("place phone thomas 0 50\n");
  reject("mobility phone waypoint 5 1 0\n");  // v_min > v_max
  reject("unknown-key 1\n");
  EXPECT_THROW(load_spatial("grid:4x4"), SpatialError);
  EXPECT_THROW(load_spatial("/no/such/spatial/spec"), SpatialError);
}

TEST(SpatialConfig, FingerprintTracksContent) {
  const SpatialConfig a = load_spatial("grid:6x5x200");
  const SpatialConfig b = load_spatial("grid:6x5x200");
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), 0u);
  EXPECT_NE(a.fingerprint(), load_spatial("grid:6x5x200:wrap").fingerprint());
  EXPECT_NE(a.fingerprint(), load_spatial("grid:6x6x200").fingerprint());
  SpatialConfig c = a;
  c.placement[index_of(DeviceType::phone)].kind = PlacementSpec::Kind::thomas;
  c.placement[index_of(DeviceType::phone)].clusters = 4;
  c.placement[index_of(DeviceType::phone)].sigma_m = 50.0;
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(SpatialMotion, AnchorsAreDeterministicAndInBounds) {
  const SpatialConfig cfg = load_spatial("grid:10x10x100");
  for (UeId ue = 0; ue < 200; ++ue) {
    const Anchors a = ue_anchors(cfg, 7, ue, DeviceType::phone);
    const Anchors b = ue_anchors(cfg, 7, ue, DeviceType::phone);
    EXPECT_EQ(a.home.x, b.home.x);
    EXPECT_EQ(a.home.y, b.home.y);
    EXPECT_EQ(a.work.x, b.work.x);
    EXPECT_GE(a.home.x, 0.0);
    EXPECT_LT(a.home.x, cfg.grid.width());
    EXPECT_GE(a.home.y, 0.0);
    EXPECT_LT(a.home.y, cfg.grid.height());
  }
  // A different seed moves the population.
  const Anchors a = ue_anchors(cfg, 7, 0, DeviceType::phone);
  const Anchors c = ue_anchors(cfg, 8, 0, DeviceType::phone);
  EXPECT_TRUE(a.home.x != c.home.x || a.home.y != c.home.y);
}

TEST(SpatialMotion, ThomasPlacementClustersAroundParents) {
  SpatialConfig cfg = load_spatial("grid:10x10x100");
  auto& p = cfg.placement[index_of(DeviceType::tablet)];
  p.kind = PlacementSpec::Kind::thomas;
  p.clusters = 5;
  p.sigma_m = 20.0;
  // Every tablet home must be near (within a few sigma of) some parent.
  std::vector<Vec2> parents;
  for (std::uint64_t k = 0; k < p.clusters; ++k) {
    parents.push_back(cluster_center(cfg, 11, k));
  }
  std::size_t near = 0;
  constexpr std::size_t k_ues = 300;
  for (UeId ue = 0; ue < k_ues; ++ue) {
    const Vec2 home = home_position(cfg, 11, ue, DeviceType::tablet);
    for (const Vec2& c : parents) {
      const double dx = home.x - c.x;
      const double dy = home.y - c.y;
      if (std::sqrt(dx * dx + dy * dy) <= 5.0 * p.sigma_m) {
        ++near;
        break;
      }
    }
  }
  // Clip at the boundary can push a point away from its parent; nearly all
  // should still sit within 5 sigma.
  EXPECT_GE(near, k_ues * 9 / 10);
}

// The lazy-advance property: a track advanced through any intermediate
// query times reports the same position at time T as a fresh track queried
// straight at T. This is what makes cells independent of slice/shard/rank
// splits — different splits query at different granularities.
TEST(SpatialMotion, WaypointAdvanceIsQueryGranularityInvariant) {
  const SpatialConfig cfg = load_spatial("grid:10x10x100");
  for (UeId ue = 0; ue < 20; ++ue) {
    UeTrack coarse, fine;
    init_track(coarse, cfg, 3, ue, DeviceType::phone, 0);
    init_track(fine, cfg, 3, ue, DeviceType::phone, 0);
    const TimeMs t_final = 2 * k_ms_per_hour;
    for (TimeMs t = 0; t <= t_final; t += 37 * 1000) {
      position_at(fine, cfg, t);
    }
    const Vec2 a = position_at(fine, cfg, t_final);
    const Vec2 b = position_at(coarse, cfg, t_final);
    EXPECT_DOUBLE_EQ(a.x, b.x) << "ue " << ue;
    EXPECT_DOUBLE_EQ(a.y, b.y) << "ue " << ue;
  }
}

TEST(SpatialMotion, StaleQueriesClampToHighWaterMark) {
  const SpatialConfig cfg = load_spatial("grid:10x10x100");
  UeTrack track;
  init_track(track, cfg, 3, 1, DeviceType::phone, 0);
  const Vec2 at_hour = position_at(track, cfg, k_ms_per_hour);
  const Vec2 stale = position_at(track, cfg, k_ms_per_hour / 2);
  EXPECT_DOUBLE_EQ(stale.x, at_hour.x);
  EXPECT_DOUBLE_EQ(stale.y, at_hour.y);
}

TEST(SpatialMotion, StaticAndCommuterFollowAnchors) {
  SpatialConfig cfg = load_spatial("grid:10x10x100");
  auto& commuter = cfg.mobility[index_of(DeviceType::phone)];
  commuter.kind = MobilitySpec::Kind::commuter;
  commuter.speed = 10.0;
  commuter.depart_h = 8.0;
  commuter.return_h = 17.0;

  UeTrack tab;
  init_track(tab, cfg, 5, 2, DeviceType::tablet, 0);
  const Anchors tablet_anchors = ue_anchors(cfg, 5, 2, DeviceType::tablet);
  const Vec2 p = position_at(tab, cfg, 3 * k_ms_per_hour);
  EXPECT_DOUBLE_EQ(p.x, tablet_anchors.home.x);
  EXPECT_DOUBLE_EQ(p.y, tablet_anchors.home.y);

  UeTrack com;
  init_track(com, cfg, 5, 3, DeviceType::phone, 0);
  const Anchors a = ue_anchors(cfg, 5, 3, DeviceType::phone);
  // Midday (well after the depart leg finished) the commuter is at work;
  // pre-dawn it is at home.
  const Vec2 dawn = position_at(com, cfg, 1 * k_ms_per_hour);
  EXPECT_DOUBLE_EQ(dawn.x, a.home.x);
  EXPECT_DOUBLE_EQ(dawn.y, a.home.y);
  UeTrack com2;
  init_track(com2, cfg, 5, 3, DeviceType::phone, 0);
  const Vec2 noon = position_at(com2, cfg, 12 * k_ms_per_hour);
  EXPECT_DOUBLE_EQ(noon.x, a.work.x);
  EXPECT_DOUBLE_EQ(noon.y, a.work.y);
}

TEST(Spatializer, HoTargetIsANeighborOfTheServingCell) {
  const SpatialConfig cfg = load_spatial("grid:8x8x150");
  std::vector<DeviceType> devices(50, DeviceType::phone);
  Spatializer serving(cfg, 21, devices, 0);
  Spatializer ho(cfg, 21, devices, 0);
  for (UeId ue = 0; ue < 50; ++ue) {
    const TimeMs t = 10 * k_ms_per_minute + ue * 1000;
    const std::uint32_t s = serving.cell_for(ue, t, EventType::atch);
    const std::uint32_t h = ho.cell_for(ue, t, EventType::ho);
    std::uint32_t nb[8];
    const std::uint32_t n = cfg.grid.neighbors(s, nb);
    EXPECT_TRUE(std::find(nb, nb + n, h) != nb + n)
        << "ue " << ue << ": ho target " << h << " not adjacent to " << s;
  }
}

TEST(Spatializer, AnnotateMatchesPerEventQueriesAndTallies) {
  const SpatialConfig cfg = load_spatial("grid:8x8x150");
  std::vector<DeviceType> devices(10, DeviceType::phone);

  EventColumns cols;
  for (int i = 0; i < 200; ++i) {
    cols.ts.push_back(i * 5000);
    cols.ue.push_back(static_cast<UeId>(i % devices.size()));
    cols.type.push_back(i % 7 == 0 ? EventType::ho : EventType::srv_req);
  }

  Spatializer annotator(cfg, 9, devices, 0);
  std::vector<std::uint64_t> tally(cfg.grid.num_cells(), 0);
  annotator.annotate(cols, &tally);
  ASSERT_EQ(cols.cell.size(), cols.ts.size());

  Spatializer reference(cfg, 9, devices, 0);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < cols.size(); ++i) {
    EXPECT_EQ(cols.cell[i],
              reference.cell_for(cols.ue[i], cols.ts[i], cols.type[i]))
        << "event " << i;
    ++total;
  }
  std::uint64_t tallied = 0;
  for (std::size_t c = 0; c < tally.size(); ++c) tallied += tally[c];
  EXPECT_EQ(tallied, total);
}

}  // namespace
}  // namespace cpg::spatial
