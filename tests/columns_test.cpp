// Property tests for the columnar hot path (core/event_columns.h,
// stream/merge.h, stream/column_pool.h): the radix sort must produce the
// exact permutation std::sort(event_time_less) produces — duplicate
// timestamps and full duplicate events included — and the gallop merge must
// deliver the exact event sequence the reference heap merge delivers over
// any run shapes.

#include <algorithm>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/event_columns.h"
#include "core/trace.h"
#include "stream/column_pool.h"
#include "stream/merge.h"

namespace cpg {
namespace {

using stream::ColumnBufferPool;
using stream::gallop_merge;
using stream::k_way_merge;

std::vector<ControlEvent> random_events(std::mt19937_64& rng, std::size_t n,
                                        TimeMs t_lo, TimeMs t_span,
                                        UeId ue_max) {
  std::vector<ControlEvent> evs;
  evs.reserve(n);
  std::uniform_int_distribution<TimeMs> t_dist(t_lo, t_lo + t_span);
  std::uniform_int_distribution<std::uint32_t> ue_dist(0, ue_max);
  std::uniform_int_distribution<int> e_dist(0, k_num_event_types - 1);
  for (std::size_t i = 0; i < n; ++i) {
    evs.push_back({t_dist(rng), ue_dist(rng),
                   k_all_event_types[static_cast<std::size_t>(e_dist(rng))]});
  }
  return evs;
}

EventColumns to_columns(const std::vector<ControlEvent>& evs) {
  EventColumns cols;
  cols.assign(evs);
  return cols;
}

std::vector<ControlEvent> to_events(const EventColumns& cols) {
  std::vector<ControlEvent> evs;
  cols.view().materialize(evs);
  return evs;
}

void expect_radix_matches_std_sort(std::vector<ControlEvent> evs) {
  EventColumns cols = to_columns(evs);
  ColumnSortScratch scratch;
  sort_columns(cols, scratch);
  std::sort(evs.begin(), evs.end(), [](const ControlEvent& a,
                                       const ControlEvent& b) {
    return event_time_less(a, b);
  });
  ASSERT_EQ(cols.size(), evs.size());
  const std::vector<ControlEvent> got = to_events(cols);
  for (std::size_t i = 0; i < evs.size(); ++i) {
    ASSERT_EQ(got[i], evs[i]) << "at index " << i;
  }
}

TEST(ColumnSort, MatchesStdSortOnRandomInputs) {
  std::mt19937_64 rng(0xc01u);
  // Sizes straddle the small-n std::sort cutoff (1024) and exercise the
  // radix passes; timestamp spans from 1 ms (all-duplicate ts) to ~10 min.
  for (const std::size_t n : {0u, 1u, 2u, 100u, 1023u, 1024u, 5000u, 60000u}) {
    for (const TimeMs span : {TimeMs{0}, TimeMs{1}, TimeMs{600'000}}) {
      expect_radix_matches_std_sort(
          random_events(rng, n, 1'700'000'000'000, span, 50'000));
    }
  }
}

TEST(ColumnSort, DuplicateTimestampTieBreaksOnUeThenType) {
  // Many events share one timestamp: order must fall back to (ue, type),
  // exactly like event_time_less — the tie-break layers of the packed key.
  std::mt19937_64 rng(7);
  std::vector<ControlEvent> evs = random_events(rng, 4096, 42, 0, 7);
  // Sprinkle exact duplicates (same ts, ue, type): sort must keep them
  // adjacent and the multiset intact.
  for (std::size_t i = 0; i < 512; ++i) evs.push_back(evs[i * 7 % evs.size()]);
  expect_radix_matches_std_sort(std::move(evs));
}

TEST(ColumnSort, WideKeyFallbackStillExact) {
  // A timestamp span too wide to pack beside 17 UE bits into 64 bits forces
  // the AoS fallback; the order contract must hold there too.
  std::mt19937_64 rng(11);
  std::vector<ControlEvent> evs =
      random_events(rng, 3000, 0, TimeMs{1} << 50, 100'000);
  expect_radix_matches_std_sort(std::move(evs));
}

TEST(ColumnSort, AlreadySortedAndReversedInputs) {
  std::mt19937_64 rng(13);
  std::vector<ControlEvent> evs =
      random_events(rng, 5000, 1'000'000, 600'000, 10'000);
  std::sort(evs.begin(), evs.end(), EventTimeLess{});
  expect_radix_matches_std_sort(evs);
  std::reverse(evs.begin(), evs.end());
  expect_radix_matches_std_sort(std::move(evs));
}

TEST(EventColumns, RoundTripAndSubview) {
  std::mt19937_64 rng(17);
  const std::vector<ControlEvent> evs =
      random_events(rng, 257, 5000, 1000, 99);
  EventColumns cols = to_columns(evs);
  ASSERT_EQ(to_events(cols), evs);
  const EventColumnsView mid = cols.view().subview(100, 57);
  for (std::size_t i = 0; i < mid.n; ++i) {
    ASSERT_EQ(mid[i], evs[100 + i]);
  }
  cols.truncate(10);
  ASSERT_EQ(cols.size(), 10u);
  ASSERT_EQ(to_events(cols), std::vector<ControlEvent>(evs.begin(),
                                                       evs.begin() + 10));
}

// --- gallop merge vs heap merge -------------------------------------------

std::vector<ControlEvent> heap_merged(
    const std::vector<std::vector<ControlEvent>>& runs) {
  std::vector<ControlEvent> out;
  k_way_merge(std::span<const std::vector<ControlEvent>>(runs),
              [&](const ControlEvent& e) { out.push_back(e); });
  return out;
}

// min_runs forces the dispatch: std::size_t(-1) = always gallop,
// 0 = always loser tree, k_loser_tree_min_runs = production behaviour.
std::vector<ControlEvent> gallop_merged_aos(
    const std::vector<std::vector<ControlEvent>>& runs,
    std::size_t min_runs = stream::k_loser_tree_min_runs) {
  std::vector<ControlEvent> out;
  gallop_merge(std::span<const std::vector<ControlEvent>>(runs),
               [&](std::size_t r, std::size_t b, std::size_t e) {
                 out.insert(out.end(), runs[r].begin() + b, runs[r].begin() + e);
               },
               min_runs);
  return out;
}

std::vector<ControlEvent> gallop_merged_soa(
    const std::vector<std::vector<ControlEvent>>& runs) {
  std::vector<EventColumns> cols;
  cols.reserve(runs.size());
  for (const auto& r : runs) cols.push_back(to_columns(r));
  EventColumns out;
  gallop_merge(std::span<const EventColumns>(cols),
               [&](std::size_t r, std::size_t b, std::size_t e) {
                 out.append(cols[r].view().subview(b, e - b));
               });
  return to_events(out);
}

void expect_gallop_matches_heap(std::vector<std::vector<ControlEvent>> runs) {
  for (auto& r : runs) std::sort(r.begin(), r.end(), EventTimeLess{});
  const std::vector<ControlEvent> want = heap_merged(runs);
  const std::vector<ControlEvent> aos = gallop_merged_aos(runs);
  ASSERT_EQ(aos.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(aos[i], want[i]) << "AoS gallop diverges at " << i;
  }
  // Both dispatch arms, regardless of k: galloping binary-search merge and
  // the loser tree must agree with the heap event for event.
  const std::vector<ControlEvent> forced_gallop =
      gallop_merged_aos(runs, std::size_t(-1));
  const std::vector<ControlEvent> forced_loser = gallop_merged_aos(runs, 0);
  ASSERT_EQ(forced_gallop.size(), want.size());
  ASSERT_EQ(forced_loser.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(forced_gallop[i], want[i]) << "forced gallop diverges at " << i;
    ASSERT_EQ(forced_loser[i], want[i]) << "loser tree diverges at " << i;
  }
  const std::vector<ControlEvent> soa = gallop_merged_soa(runs);
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(soa[i], want[i]) << "SoA gallop diverges at " << i;
  }
}

TEST(GallopMerge, AdversarialRunShapes) {
  std::mt19937_64 rng(23);
  // Empty runs mixed in, single run, one run strictly after another, and
  // fully interleaved runs.
  expect_gallop_matches_heap({});
  expect_gallop_matches_heap({{}});
  expect_gallop_matches_heap({{}, {}, {}});
  expect_gallop_matches_heap({random_events(rng, 1000, 0, 5000, 100)});
  expect_gallop_matches_heap(
      {random_events(rng, 500, 0, 5000, 100), {}, {},
       random_events(rng, 500, 2000, 5000, 100)});
  // One run strictly after the other: the merge must hand over whole runs.
  expect_gallop_matches_heap({random_events(rng, 800, 0, 999, 50),
                              random_events(rng, 800, 10'000, 999, 50)});
  // Fully interleaved: same window, overlapping UE ranges.
  expect_gallop_matches_heap({random_events(rng, 1500, 0, 100, 20),
                              random_events(rng, 1500, 0, 100, 20),
                              random_events(rng, 1500, 0, 100, 20),
                              random_events(rng, 1500, 0, 100, 20)});
}

TEST(GallopMerge, DuplicateEventsAcrossRunsKeepHeapTieOrder) {
  // The streaming runtime never produces equal events in two runs (a UE
  // lives in one shard), but the merge contract is stronger: equal heads
  // resolve lower-run-index-first, exactly like the heap's comparator. Use
  // identical runs — every head comparison is a tie.
  std::mt19937_64 rng(29);
  std::vector<ControlEvent> base = random_events(rng, 400, 0, 50, 5);
  std::sort(base.begin(), base.end(), EventTimeLess{});
  expect_gallop_matches_heap({base, base, base});
  // And a mix: duplicates plus unique events on each side.
  std::vector<ControlEvent> left = base;
  std::vector<ControlEvent> right = base;
  auto extra = random_events(rng, 200, 0, 50, 5);
  left.insert(left.end(), extra.begin(), extra.begin() + 100);
  right.insert(right.end(), extra.begin() + 100, extra.end());
  expect_gallop_matches_heap({left, right});
}

TEST(GallopMerge, RandomizedSweep) {
  std::mt19937_64 rng(31);
  for (int iter = 0; iter < 50; ++iter) {
    std::uniform_int_distribution<std::size_t> k_dist(1, 8);
    std::uniform_int_distribution<std::size_t> n_dist(0, 600);
    std::vector<std::vector<ControlEvent>> runs(k_dist(rng));
    for (auto& r : runs) {
      r = random_events(rng, n_dist(rng), 0, 2000, 200);
    }
    expect_gallop_matches_heap(std::move(runs));
  }
}

TEST(LoserTreeMerge, ThresholdBoundaryRunCountsMatchHeap) {
  // k around the dispatch threshold (k_loser_tree_min_runs = 16): below it
  // the gallop path serves, at/above it the loser tree takes over — the
  // merged stream must be identical either way, including via the forced
  // paths expect_gallop_matches_heap always checks.
  std::mt19937_64 rng(37);
  for (const std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{15},
                              std::size_t{16}, std::size_t{17},
                              std::size_t{33}}) {
    std::vector<std::vector<ControlEvent>> runs(k);
    std::uniform_int_distribution<std::size_t> n_dist(0, 300);
    for (auto& r : runs) r = random_events(rng, n_dist(rng), 0, 1500, 120);
    expect_gallop_matches_heap(std::move(runs));
  }
}

TEST(LoserTreeMerge, DuplicateEventsAcrossManyRunsKeepHeapTieOrder) {
  // 17 identical runs: every comparison in the tree is a tie, and the
  // production dispatch picks the loser tree (k >= 16). Equal heads must
  // resolve lower-run-index-first, exactly like the heap.
  std::mt19937_64 rng(41);
  std::vector<ControlEvent> base = random_events(rng, 120, 0, 40, 4);
  std::sort(base.begin(), base.end(), EventTimeLess{});
  std::vector<std::vector<ControlEvent>> runs(17, base);
  runs[3].clear();  // an exhausted-from-the-start leaf inside the tree
  expect_gallop_matches_heap(std::move(runs));
}

TEST(LoserTreeMerge, RandomizedSweepAroundAndAboveThreshold) {
  std::mt19937_64 rng(43);
  for (int iter = 0; iter < 30; ++iter) {
    std::uniform_int_distribution<std::size_t> k_dist(12, 36);
    std::uniform_int_distribution<std::size_t> n_dist(0, 250);
    std::vector<std::vector<ControlEvent>> runs(k_dist(rng));
    for (auto& r : runs) r = random_events(rng, n_dist(rng), 0, 900, 80);
    expect_gallop_matches_heap(std::move(runs));
  }
}

// --- buffer pool -----------------------------------------------------------

TEST(ColumnBufferPool, RecyclesCapacityAcrossThreads) {
  // Producer/consumer handoff like the streaming runtime's: one thread
  // acquires, fills, and ships buffers; the other consumes and releases
  // them back. Run under TSan this is the pool's happens-before test.
  ColumnBufferPool pool;
  EventColumns warm;
  warm.reserve(4096);
  const std::size_t warm_cap = warm.capacity();
  pool.release(std::move(warm));

  EventColumns got = pool.acquire();
  EXPECT_EQ(got.size(), 0u);
  EXPECT_GE(got.capacity(), warm_cap);  // capacity survived the round trip
  pool.release(std::move(got));

  std::vector<EventColumns> shipped(64);
  std::thread producer([&] {
    for (auto& slot : shipped) {
      EventColumns cols = pool.acquire();
      for (std::uint32_t i = 0; i < 1000; ++i) {
        cols.push_back(static_cast<TimeMs>(i), i, EventType::ho);
      }
      slot = std::move(cols);
    }
  });
  producer.join();
  std::thread consumer([&] {
    for (auto& slot : shipped) {
      EXPECT_EQ(slot.size(), 1000u);
      pool.release(std::move(slot));
    }
  });
  consumer.join();
  EXPECT_GE(pool.idle(), 1u);
}

}  // namespace
}  // namespace cpg
