#include <gtest/gtest.h>

#include "statemachine/replay.h"

namespace cpg::sm {
namespace {

std::vector<ControlEvent> seq(
    std::initializer_list<std::pair<TimeMs, EventType>> events) {
  std::vector<ControlEvent> out;
  for (const auto& [t, e] : events) out.push_back({t, 0, e});
  return out;
}

TEST(Replay, EmptySequenceIsNoop) {
  CollectingVisitor v(lte_two_level_spec());
  replay_ue(lte_two_level_spec(), {}, v);
  EXPECT_TRUE(v.events.empty());
}

TEST(Replay, ConnectedAndIdleSojourns) {
  // SRV_REQ @10s, S1_CONN_REL @70s, SRV_REQ @130s: 60 s CONNECTED, 60 s
  // IDLE.
  const auto events = seq({{10'000, EventType::srv_req},
                           {70'000, EventType::s1_conn_rel},
                           {130'000, EventType::srv_req}});
  CollectingVisitor v(lte_two_level_spec());
  replay_ue(lte_two_level_spec(), events, v);
  const auto& conn = v.state_sojourn_s[index_of(UeState::connected)];
  ASSERT_EQ(conn.size(), 1u);
  EXPECT_DOUBLE_EQ(conn[0].seconds, 60.0);
  EXPECT_EQ(conn[0].hour, 0);
  const auto& idle = v.state_sojourn_s[index_of(UeState::idle)];
  ASSERT_EQ(idle.size(), 1u);
  EXPECT_DOUBLE_EQ(idle[0].seconds, 60.0);
  EXPECT_TRUE(v.violations.empty());
}

TEST(Replay, FirstSojournIsCensored) {
  // The state before the first event has an unknown entry time: no sample.
  const auto events = seq({{5'000, EventType::s1_conn_rel}});
  CollectingVisitor v(lte_two_level_spec());
  replay_ue(lte_two_level_spec(), events, v);
  EXPECT_TRUE(v.state_sojourn_s[index_of(UeState::connected)].empty());
}

TEST(Replay, RegisteredSpansConnectedAndIdle) {
  const auto events = seq({{0, EventType::atch},
                           {30'000, EventType::s1_conn_rel},
                           {90'000, EventType::dtch}});
  CollectingVisitor v(lte_two_level_spec());
  replay_ue(lte_two_level_spec(), events, v);
  const auto& reg = v.state_sojourn_s[index_of(UeState::registered)];
  ASSERT_EQ(reg.size(), 1u);
  EXPECT_DOUBLE_EQ(reg[0].seconds, 90.0);
  EXPECT_TRUE(v.violations.empty());
}

TEST(Replay, InterarrivalPerEventType) {
  const auto events = seq({{0, EventType::srv_req},
                           {10'000, EventType::s1_conn_rel},
                           {60'000, EventType::srv_req},
                           {95'000, EventType::s1_conn_rel}});
  CollectingVisitor v(lte_two_level_spec());
  replay_ue(lte_two_level_spec(), events, v);
  const auto& srv = v.interarrival_s[index_of(EventType::srv_req)];
  ASSERT_EQ(srv.size(), 1u);
  EXPECT_DOUBLE_EQ(srv[0].seconds, 60.0);
  const auto& rel = v.interarrival_s[index_of(EventType::s1_conn_rel)];
  ASSERT_EQ(rel.size(), 1u);
  EXPECT_DOUBLE_EQ(rel[0].seconds, 85.0);
}

TEST(Replay, HourAttributionUsesSojournStart) {
  // CONNECTED from 0:59:30 to 1:00:30 -> attributed to hour 0.
  const TimeMs start = 59 * k_ms_per_minute + 30'000;
  const auto events = seq({{start, EventType::srv_req},
                           {start + 60'000, EventType::s1_conn_rel}});
  CollectingVisitor v(lte_two_level_spec());
  replay_ue(lte_two_level_spec(), events, v);
  const auto& conn = v.state_sojourn_s[index_of(UeState::connected)];
  ASSERT_EQ(conn.size(), 1u);
  EXPECT_EQ(conn[0].hour, 0);
}

TEST(Replay, SubEdgeSojourns) {
  // SRV_REQ, HO after 5 s (edge SRV_REQ_S--HO), HO after 3 s (HO_S--HO).
  const auto events = seq({{0, EventType::srv_req},
                           {5'000, EventType::ho},
                           {8'000, EventType::ho}});
  CollectingVisitor v(lte_two_level_spec());
  replay_ue(lte_two_level_spec(), events, v);
  std::size_t total = 0;
  for (const auto& edge : v.sub_edge_sojourn_s) total += edge.size();
  ASSERT_EQ(total, 2u);
  // Edge 0 = (CONNECTED, SRV_REQ_S, HO, HO_S); edge 2 = (CONNECTED, HO_S,
  // HO, HO_S) per spec order.
  ASSERT_EQ(v.sub_edge_sojourn_s[0].size(), 1u);
  EXPECT_DOUBLE_EQ(v.sub_edge_sojourn_s[0][0].seconds, 5.0);
  ASSERT_EQ(v.sub_edge_sojourn_s[2].size(), 1u);
  EXPECT_DOUBLE_EQ(v.sub_edge_sojourn_s[2][0].seconds, 3.0);
}

TEST(Replay, SubTimerResetsOnTopSwitch) {
  // SRV_REQ @0, S1_CONN_REL @10 s (top switch), TAU @25 s: the idle TAU's
  // sojourn counts from the top switch, i.e. 15 s.
  const auto events = seq({{0, EventType::srv_req},
                           {10'000, EventType::s1_conn_rel},
                           {25'000, EventType::tau}});
  CollectingVisitor v(lte_two_level_spec());
  replay_ue(lte_two_level_spec(), events, v);
  // Edge 6 = (IDLE, S1_REL_S_1, TAU, TAU_S_IDLE).
  ASSERT_EQ(v.sub_edge_sojourn_s[6].size(), 1u);
  EXPECT_DOUBLE_EQ(v.sub_edge_sojourn_s[6][0].seconds, 15.0);
}

TEST(Replay, IdleTauCycleIsCleanWithTwoLevelMachine) {
  const auto events = seq({{0, EventType::srv_req},
                           {10'000, EventType::s1_conn_rel},
                           {3'000'000, EventType::tau},
                           {3'001'000, EventType::s1_conn_rel},
                           {6'000'000, EventType::tau},
                           {6'001'000, EventType::s1_conn_rel},
                           {7'000'000, EventType::srv_req}});
  CollectingVisitor v(lte_two_level_spec());
  replay_ue(lte_two_level_spec(), events, v);
  EXPECT_TRUE(v.violations.empty());
  // One long IDLE sojourn (10 s .. 7000 s), not broken by the TAU cycles.
  const auto& idle = v.state_sojourn_s[index_of(UeState::idle)];
  ASSERT_EQ(idle.size(), 1u);
  EXPECT_DOUBLE_EQ(idle[0].seconds, 6990.0);
}

TEST(Replay, FirstEventPerHour) {
  const auto events = seq({{10'000, EventType::srv_req},
                           {20'000, EventType::s1_conn_rel},
                           {k_ms_per_hour + 500, EventType::srv_req}});
  CollectingVisitor v(lte_two_level_spec());
  replay_ue(lte_two_level_spec(), events, v);
  ASSERT_EQ(v.first_events.size(), 2u);
  EXPECT_EQ(v.first_events[0].hour_index, 0);
  EXPECT_EQ(v.first_events[0].type, EventType::srv_req);
  EXPECT_EQ(v.first_events[0].offset_ms, 10'000);
  EXPECT_EQ(v.first_events[1].hour_index, 1);
  EXPECT_EQ(v.first_events[1].offset_ms, 500);
}

TEST(Replay, ViolationsDetectedUnderEmmEcm) {
  // HO / TAU are violations for the EMM-ECM machine but fine for the
  // two-level machine.
  const auto events = seq({{0, EventType::srv_req},
                           {1'000, EventType::ho},
                           {2'000, EventType::tau}});
  CollectingVisitor v1(emm_ecm_spec());
  replay_ue(emm_ecm_spec(), events, v1);
  EXPECT_EQ(v1.violations.size(), 2u);

  CollectingVisitor v2(lte_two_level_spec());
  replay_ue(lte_two_level_spec(), events, v2);
  EXPECT_TRUE(v2.violations.empty());
}

TEST(CountViolations, CleanAndDirtyTraces) {
  Trace clean;
  const UeId u = clean.add_ue(DeviceType::phone);
  clean.add_event(0, u, EventType::srv_req);
  clean.add_event(1'000, u, EventType::ho);
  clean.add_event(2'000, u, EventType::s1_conn_rel);
  clean.finalize();
  EXPECT_EQ(count_violations(lte_two_level_spec(), clean), 0u);

  Trace dirty;
  const UeId d = dirty.add_ue(DeviceType::phone);
  dirty.add_event(0, d, EventType::srv_req);
  dirty.add_event(1'000, d, EventType::s1_conn_rel);
  dirty.add_event(2'000, d, EventType::ho);  // HO in IDLE
  dirty.finalize();
  EXPECT_EQ(count_violations(lte_two_level_spec(), dirty), 1u);
}

TEST(StateBreakdown, ClassifiesHoTauByState) {
  Trace t;
  const UeId u = t.add_ue(DeviceType::tablet);
  t.add_event(0, u, EventType::srv_req);
  t.add_event(1'000, u, EventType::ho);        // CONNECTED
  t.add_event(2'000, u, EventType::tau);       // CONNECTED
  t.add_event(3'000, u, EventType::s1_conn_rel);
  t.add_event(10'000, u, EventType::tau);      // IDLE
  t.add_event(10'500, u, EventType::s1_conn_rel);
  t.finalize();
  const auto bd = compute_state_breakdown(lte_two_level_spec(), t);
  const auto& row = bd.counts[index_of(DeviceType::tablet)];
  EXPECT_EQ(row[2], 1u);  // SRV_REQ
  EXPECT_EQ(row[3], 2u);  // S1_CONN_REL (top release + idle TAU release)
  EXPECT_EQ(row[4], 1u);  // HO (CONN)
  EXPECT_EQ(row[5], 0u);  // HO (IDLE)
  EXPECT_EQ(row[6], 1u);  // TAU (CONN)
  EXPECT_EQ(row[7], 1u);  // TAU (IDLE)
  EXPECT_EQ(bd.device_total(DeviceType::tablet), 6u);
  EXPECT_DOUBLE_EQ(bd.fraction(DeviceType::tablet, 2), 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(bd.fraction(DeviceType::phone, 2), 0.0);
}

TEST(StateBreakdown, RowNames) {
  EXPECT_EQ(StateBreakdown::row_name(0), "ATCH");
  EXPECT_EQ(StateBreakdown::row_name(4), "HO (CONN.)");
  EXPECT_EQ(StateBreakdown::row_name(7), "TAU (IDLE)");
}

}  // namespace
}  // namespace cpg::sm
