// Tests for the deterministic failpoint library (src/fault/): disarmed
// sites are inert, armed sites throw per spec (action, probability, skip,
// fire cap), schedules are reproducible from the seed, and the
// CPG_FAILPOINTS spec/env parser accepts the documented syntax and rejects
// everything else.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "fault/failpoint.h"

namespace cpg::fault {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { disarm_all(); }
};

FailpointSpec spec(Action a, double prob = 1.0, std::uint64_t seed = 0,
                   std::uint64_t skip = 0, std::uint64_t max_fires = 0) {
  FailpointSpec s;
  s.action = a;
  s.probability = prob;
  s.seed = seed;
  s.skip = skip;
  s.max_fires = max_fires;
  return s;
}

TEST_F(FailpointTest, DisarmedSiteIsInert) {
  for (int i = 0; i < 100; ++i) {
    CPG_FAILPOINT("test.disarmed");
  }
  EXPECT_FALSE(failpoint("test.disarmed").armed());
  EXPECT_EQ(failpoint("test.disarmed").fires(), 0u);
}

TEST_F(FailpointTest, RegistryReturnsSameInstanceByName) {
  Failpoint& a = failpoint("test.registry");
  Failpoint& b = failpoint("test.registry");
  EXPECT_EQ(&a, &b);
}

TEST_F(FailpointTest, ErrorActionThrowsRetryableFault) {
  arm("test.error", spec(Action::error));
  try {
    CPG_FAILPOINT("test.error");
    FAIL() << "expected InjectedFault";
  } catch (const InjectedFault& f) {
    EXPECT_TRUE(f.retryable());
    EXPECT_NE(std::string(f.what()).find("test.error"), std::string::npos);
  }
}

TEST_F(FailpointTest, FatalActionThrowsNonRetryableFault) {
  arm("test.fatal", spec(Action::fatal));
  try {
    CPG_FAILPOINT("test.fatal");
    FAIL() << "expected InjectedFault";
  } catch (const InjectedFault& f) {
    EXPECT_FALSE(f.retryable());
  }
}

TEST_F(FailpointTest, SkipThenFireCapThenPass) {
  arm("test.sched", spec(Action::error, 1.0, 0, /*skip=*/3, /*max_fires=*/2));
  Failpoint& fp = failpoint("test.sched");
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    try {
      fp.evaluate();
    } catch (const InjectedFault&) {
      ++fired;
      // Fires exactly at the 4th and 5th eligible hits.
      EXPECT_TRUE(i == 3 || i == 4) << "fired at hit " << i;
    }
  }
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(fp.fires(), 2u);
  EXPECT_EQ(fp.hits(), 10u);
}

std::vector<bool> fire_pattern(std::uint64_t seed, int n) {
  arm("test.prob", spec(Action::error, 0.4, seed));
  std::vector<bool> pattern;
  for (int i = 0; i < n; ++i) {
    try {
      failpoint("test.prob").evaluate();
      pattern.push_back(false);
    } catch (const InjectedFault&) {
      pattern.push_back(true);
    }
  }
  return pattern;
}

TEST_F(FailpointTest, ProbabilisticScheduleIsReproducibleFromSeed) {
  const auto a = fire_pattern(1234, 200);
  const auto b = fire_pattern(1234, 200);
  EXPECT_EQ(a, b);
  // Some fires, some passes — p=0.4 over 200 draws.
  EXPECT_GT(std::count(a.begin(), a.end(), true), 0);
  EXPECT_GT(std::count(a.begin(), a.end(), false), 0);
  // A different seed gives a different schedule.
  EXPECT_NE(fire_pattern(77, 200), a);
}

TEST_F(FailpointTest, DisarmStopsFiring) {
  arm("test.disarm", spec(Action::error));
  EXPECT_THROW(failpoint("test.disarm").evaluate(), InjectedFault);
  disarm("test.disarm");
  EXPECT_NO_THROW(failpoint("test.disarm").evaluate());
}

TEST_F(FailpointTest, ArmFromSpecParsesDocumentedSyntax) {
  EXPECT_EQ(arm_from_spec("a.one=error;a.two=fatal(1,7,5,1);a.three=off"),
            2u);  // `off` disarms, does not count as armed
  EXPECT_TRUE(failpoint("a.one").armed());
  EXPECT_TRUE(failpoint("a.two").armed());
  EXPECT_FALSE(failpoint("a.three").armed());
  EXPECT_THROW(failpoint("a.one").evaluate(), InjectedFault);
  // a.two: skip 5, then exactly one fatal fire.
  for (int i = 0; i < 5; ++i) {
    EXPECT_NO_THROW(failpoint("a.two").evaluate());
  }
  EXPECT_THROW(failpoint("a.two").evaluate(), InjectedFault);
  EXPECT_NO_THROW(failpoint("a.two").evaluate());
}

TEST_F(FailpointTest, ProcessLevelActionsParseButAreNotEvaluatedHere) {
  // kill raises SIGKILL and hang parks the thread forever — both are for
  // spawned worker processes (scripts/chaos_smoke.sh), so this test only
  // checks that the chaos spec syntax arms them, never evaluates them.
  EXPECT_EQ(arm_from_spec("x.kill=kill(1,0,3);x.hang=hang"), 2u);
  EXPECT_TRUE(failpoint("x.kill").armed());
  EXPECT_TRUE(failpoint("x.hang").armed());
  EXPECT_EQ(failpoint("x.kill").fires(), 0u);
  EXPECT_EQ(failpoint("x.hang").fires(), 0u);
}

TEST_F(FailpointTest, ArmFromSpecRejectsBadEntries) {
  EXPECT_THROW(arm_from_spec("noequals"), std::invalid_argument);
  EXPECT_THROW(arm_from_spec("x=unknown_action"), std::invalid_argument);
  EXPECT_THROW(arm_from_spec("x=error(notanumber)"), std::invalid_argument);
  EXPECT_THROW(arm_from_spec("=error"), std::invalid_argument);
}

TEST_F(FailpointTest, ArmFromEnvReadsVariable) {
  ::setenv("CPG_FAILPOINTS", "env.point=error", 1);
  EXPECT_EQ(arm_from_env(), 1u);
  EXPECT_TRUE(failpoint("env.point").armed());
  ::unsetenv("CPG_FAILPOINTS");
  EXPECT_EQ(arm_from_env(), 0u);
}

TEST_F(FailpointTest, RearmingResetsCountersAndSchedule) {
  arm("test.rearm", spec(Action::error, 1.0, 0, 0, /*max_fires=*/1));
  EXPECT_THROW(failpoint("test.rearm").evaluate(), InjectedFault);
  EXPECT_NO_THROW(failpoint("test.rearm").evaluate());  // cap reached
  arm("test.rearm", spec(Action::error, 1.0, 0, 0, 1));
  EXPECT_THROW(failpoint("test.rearm").evaluate(), InjectedFault);
}

}  // namespace
}  // namespace cpg::fault
