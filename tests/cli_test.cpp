// Audit of the stream_gen command-line surface (tools/stream_gen_cli.*):
// the usage text and the parser's flag tables must agree exactly — every
// accepted flag is documented in --help, and --help mentions no flag the
// parser would reject — plus parser behaviors (=-values, unconditional
// value consumption, unknown flags, typed lookups).
#include <gtest/gtest.h>

#include <map>
#include <regex>
#include <set>
#include <string>
#include <vector>

#include "stream_gen_cli.h"

namespace cpg::cli {
namespace {

// Every "--flag" token mentioned anywhere in the usage text.
std::set<std::string> flags_in_usage() {
  std::set<std::string> found;
  const std::string text = k_usage;
  const std::regex flag_re("--([a-z][a-z0-9-]*)");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), flag_re);
       it != std::sregex_iterator(); ++it) {
    found.insert((*it)[1].str());
  }
  return found;
}

TEST(CliSurface, HelpDocumentsEveryAcceptedFlag) {
  const std::set<std::string> documented = flags_in_usage();
  for (const std::string& f : value_flags()) {
    EXPECT_TRUE(documented.count(f))
        << "--" << f << " is accepted by the parser but missing from --help";
  }
  for (const std::string& f : switch_flags()) {
    EXPECT_TRUE(documented.count(f))
        << "--" << f << " is accepted by the parser but missing from --help";
  }
}

TEST(CliSurface, HelpMentionsNoUnknownFlag) {
  for (const std::string& f : flags_in_usage()) {
    EXPECT_TRUE(value_flags().count(f) || switch_flags().count(f))
        << "--" << f << " appears in --help but the parser rejects it";
  }
}

TEST(CliSurface, ValueAndSwitchTablesAreDisjoint) {
  for (const std::string& f : value_flags()) {
    EXPECT_FALSE(switch_flags().count(f)) << "--" << f << " is in both tables";
  }
}

std::map<std::string, std::string> parse(std::vector<std::string> args) {
  args.insert(args.begin(), "stream_gen");
  std::vector<char*> argv;
  for (std::string& a : args) argv.push_back(a.data());
  return parse_flags(static_cast<int>(argv.size()), argv.data());
}

TEST(CliParse, ValueFlagsTakeSeparateOrEqualsValues) {
  const auto a = parse({"--phones", "100", "--seed=7"});
  EXPECT_EQ(a.at("phones"), "100");
  EXPECT_EQ(a.at("seed"), "7");
}

TEST(CliParse, ValueFlagsConsumeNegativeNumbers) {
  const auto a = parse({"--accel", "-2"});
  EXPECT_EQ(a.at("accel"), "-2");
}

TEST(CliParse, SwitchesTakeNoValue) {
  const auto a = parse({"--resume", "--ranks", "4"});
  EXPECT_TRUE(a.count("resume"));
  EXPECT_EQ(a.at("resume"), "1");
  EXPECT_EQ(a.at("ranks"), "4");
  EXPECT_THROW(parse({"--resume=yes"}), UsageError);
}

TEST(CliParse, UnknownFlagNamesTheFlag) {
  try {
    parse({"--frobnicate", "1"});
    FAIL() << "expected a UsageError";
  } catch (const UsageError& e) {
    EXPECT_NE(std::string(e.what()).find("frobnicate"), std::string::npos);
  }
}

TEST(CliParse, MissingValueNamesTheFlag) {
  try {
    parse({"--phones"});
    FAIL() << "expected a UsageError";
  } catch (const UsageError& e) {
    EXPECT_NE(std::string(e.what()).find("phones"), std::string::npos);
  }
}

TEST(CliParse, TypedLookupsValidate) {
  const auto a = parse({"--phones", "100", "--accel", "2.5"});
  EXPECT_EQ(flag_u64(a, "phones", 0), 100u);
  EXPECT_EQ(flag_u64(a, "cars", 7), 7u);
  EXPECT_DOUBLE_EQ(flag_double(a, "accel", 1.0), 2.5);
  const auto bad = parse({"--phones", "abc"});
  EXPECT_THROW(flag_u64(bad, "phones", 0), UsageError);
}

TEST(CliParse, RangeCheckedLookupsNameTheFlagAndTheRange) {
  // The bugfix this guards: absurd numerics (--ranks 99999999999, negative
  // intervals) used to flow into the runtime and fail deep inside it; now
  // they die at the parser with a one-line error naming the flag.
  const auto a = parse({"--ranks", "99999999999"});
  try {
    flag_u64_range(a, "ranks", 1, 1, 512);
    FAIL() << "expected a UsageError";
  } catch (const UsageError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--ranks"), std::string::npos) << what;
    EXPECT_NE(what.find("between 1 and 512"), std::string::npos) << what;
    EXPECT_NE(what.find("99999999999"), std::string::npos) << what;
  }
  EXPECT_THROW(flag_u64_range(parse({"--ranks", "0"}), "ranks", 1, 1, 512),
               UsageError);
  EXPECT_THROW(flag_u64_range(parse({"--ranks", "-3"}), "ranks", 1, 1, 512),
               UsageError);
  EXPECT_EQ(flag_u64_range(parse({"--ranks", "512"}), "ranks", 1, 1, 512),
            512u);
  EXPECT_EQ(flag_u64_range(parse({}), "ranks", 1, 1, 512), 1u);  // fallback
}

TEST(CliParse, PositiveDoubleLookupsRejectNonPositiveAndNan) {
  EXPECT_THROW(
      flag_double_positive(parse({"--hours", "-1"}), "hours", 1.0, 1e6),
      UsageError);
  EXPECT_THROW(
      flag_double_positive(parse({"--hours", "0"}), "hours", 1.0, 1e6),
      UsageError);
  EXPECT_THROW(
      flag_double_positive(parse({"--hours", "nan"}), "hours", 1.0, 1e6),
      UsageError);
  EXPECT_THROW(
      flag_double_positive(parse({"--hours", "1e300"}), "hours", 1.0, 1e6),
      UsageError);
  try {
    flag_double_positive(parse({"--metrics-interval-s", "-0.5"}),
                         "metrics-interval-s", 1.0, 86400.0);
    FAIL() << "expected a UsageError";
  } catch (const UsageError& e) {
    EXPECT_NE(std::string(e.what()).find("--metrics-interval-s"),
              std::string::npos);
  }
  EXPECT_DOUBLE_EQ(
      flag_double_positive(parse({"--hours", "6.5"}), "hours", 1.0, 1e6),
      6.5);
  EXPECT_DOUBLE_EQ(flag_double_positive(parse({}), "hours", 1.0, 1e6), 1.0);
}

TEST(CliSurface, TraceFormatFlagIsOnTheSurface) {
  // --format selects the sink encoding (csv | cpgt); the usage text must
  // document it and the parser must accept it.
  EXPECT_TRUE(value_flags().count("format"));
  EXPECT_NE(std::string(k_usage).find("cpgt"), std::string::npos);
  const auto a = parse({"--format", "cpgt", "--out", "x"});
  EXPECT_EQ(a.at("format"), "cpgt");
}

TEST(CliSurface, DistributedFlagsAreOnTheSurface) {
  // The distributed entry points must stay part of the audited surface.
  EXPECT_TRUE(value_flags().count("ranks"));
  EXPECT_TRUE(value_flags().count("dist-worker"));
  EXPECT_TRUE(value_flags().count("dist-resume-dir"));
  EXPECT_TRUE(switch_flags().count("dist-obs"));
}

}  // namespace
}  // namespace cpg::cli
