#include <gtest/gtest.h>

#include <sstream>

#include "io/csv.h"
#include "io/table.h"

namespace cpg::io {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"Event", "P", "CC"});
  t.add_row({"SRV_REQ", "45.5%", "38.9%"});
  t.add_rule();
  t.add_row({"HO", "3.8%", "6.6%"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| Event   |"), std::string::npos);
  EXPECT_NE(s.find("| SRV_REQ | 45.5% | 38.9% |"), std::string::npos);
  EXPECT_NE(s.find("| HO      |"), std::string::npos);
  // Rule lines (4 total: top, under header, mid, bottom).
  std::size_t rules = 0;
  std::istringstream lines(s);
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty() && line[0] == '+') ++rules;
  }
  EXPECT_EQ(rules, 4u);
  EXPECT_EQ(t.num_rows(), 3u);  // incl. the rule marker
}

TEST(Table, ShortRowsArePadded) {
  Table t({"A", "B"});
  t.add_row({"x"});
  EXPECT_NE(t.to_string().find("| x | "), std::string::npos);
}

TEST(Format, Percent) {
  EXPECT_EQ(fmt_pct(0.455), "45.5%");
  EXPECT_EQ(fmt_pct(0.0), "0.0%");
  EXPECT_EQ(fmt_pct(0.12345, 2), "12.35%");
}

TEST(Format, SignedPercent) {
  EXPECT_EQ(fmt_signed_pct(0.014), "+1.4%");
  EXPECT_EQ(fmt_signed_pct(-0.455), "-45.5%");
  EXPECT_EQ(fmt_signed_pct(0.0), "+0.0%");
}

TEST(Format, DoubleAndCount) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1234), "1,234");
  EXPECT_EQ(fmt_count(1234567890), "1,234,567,890");
}

Trace sample_trace() {
  Trace t;
  const UeId p = t.add_ue(DeviceType::phone);
  const UeId c = t.add_ue(DeviceType::connected_car);
  t.add_event(100, p, EventType::atch);
  t.add_event(250, c, EventType::srv_req);
  t.add_event(900, p, EventType::s1_conn_rel);
  t.finalize();
  return t;
}

TEST(Csv, WriteFormat) {
  std::ostringstream events, ues;
  const Trace t = sample_trace();
  write_events_csv(t, events);
  write_ues_csv(t, ues);
  EXPECT_EQ(events.str(),
            "t_ms,ue_id,event\n"
            "100,0,ATCH\n"
            "250,1,SRV_REQ\n"
            "900,0,S1_CONN_REL\n");
  EXPECT_EQ(ues.str(),
            "ue_id,device\n"
            "0,phone\n"
            "1,connected_car\n");
}

TEST(Csv, RoundTrip) {
  const Trace t = sample_trace();
  std::ostringstream events, ues;
  write_events_csv(t, events);
  write_ues_csv(t, ues);
  std::istringstream events_in(events.str()), ues_in(ues.str());
  const Trace back = read_trace_streams(ues_in, events_in);
  ASSERT_EQ(back.num_ues(), t.num_ues());
  ASSERT_EQ(back.num_events(), t.num_events());
  for (std::size_t i = 0; i < t.num_events(); ++i) {
    EXPECT_EQ(back.events()[i], t.events()[i]);
  }
  EXPECT_EQ(back.device(0), DeviceType::phone);
  EXPECT_EQ(back.device(1), DeviceType::connected_car);
}

TEST(Csv, RejectsMalformedInput) {
  {
    std::istringstream ues("wrong header\n"), events("t_ms,ue_id,event\n");
    EXPECT_THROW(read_trace_streams(ues, events), std::runtime_error);
  }
  {
    std::istringstream ues("ue_id,device\n0,phone\n");
    std::istringstream events("t_ms,ue_id,event\nabc,0,ATCH\n");
    EXPECT_THROW(read_trace_streams(ues, events), std::runtime_error);
  }
  {
    std::istringstream ues("ue_id,device\n0,phone\n");
    std::istringstream events("t_ms,ue_id,event\n1,0,NOT_AN_EVENT\n");
    EXPECT_THROW(read_trace_streams(ues, events), std::runtime_error);
  }
  {
    std::istringstream ues("ue_id,device\n5,phone\n");  // non-dense id
    std::istringstream events("t_ms,ue_id,event\n");
    EXPECT_THROW(read_trace_streams(ues, events), std::runtime_error);
  }
}

TEST(Csv, FileRoundTrip) {
  const Trace t = sample_trace();
  const std::string prefix = ::testing::TempDir() + "/cpg_csv_test";
  write_trace(t, prefix);
  const Trace back = read_trace(prefix);
  EXPECT_EQ(back.num_events(), t.num_events());
}

}  // namespace
}  // namespace cpg::io
